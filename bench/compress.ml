(* Compressed-representation benchmark: per-mode node counts and build
   throughput for the four Dd modes over chain-heavy generator families.

     dune exec bench/compress.exe              -- full sweep -> BENCH_compress.json
     dune exec bench/compress.exe -- --smoke   -- small sweep + hard assertions
     dune exec bench/compress.exe -- -o FILE   -- write the report elsewhere

   Two function families, both built by in-tree generators:

   - "generator": sparse cube covers — a disjunction of K minterms over N
     variables, each with exactly W variables set.  The plain BDD spends
     almost every node on ¬x-runs (CBDD folds them); the plain ZDD is
     small by construction and CZDD compresses it further.  This is the
     chain-heavy family the acceptance gate measures: CBDD and CZDD must
     report at least a 2x node reduction against the plain BDD.
   - "parity-spread": parity of W variables spread evenly across N — the
     mirror image: the BDD is already compact, the ZDD drowns in
     don't-care chains, and CZDD folds them back.

   Every instance is verified before it is reported: each mode's diagram
   round-trips (to_bdd) bit-identically to the plain-BDD original and
   reproduces its minterm count, and one instance is rebuilt in a
   ~shared:true striped manager to check the chain tags hash-cons
   identically under the concurrent table layout.

   The report is machine-readable JSON, schema "bdd-compress-bench/v1":
   "host_cpus" and per-row "mode" for bench hygiene, one row per
   (instance, mode) with node counts, build/op timings and the chain-fold
   counters, and top-level geometric-mean reductions on the generator
   family.  `obs_check --compress-bench` validates the schema and the
   invariants (chained never larger than plain, folds never exceeding mk
   calls); `make compress-smoke` gates on both. *)

open Obs.Json

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "compress: %s\n" msg;
      exit 1)
    fmt

let schema_version = "bdd-compress-bench/v1"

(* deterministic splitmix-style PRNG so every run benches the same
   functions *)
let rng_state = ref 0x1e3779b97f4a7c15

let rand_int bound =
  let z = !rng_state + 0x1e3779b97f4a7c15 in
  rng_state := z;
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  let z = z lxor (z lsr 31) in
  (z land max_int) mod bound

(* K distinct sparse minterms over N vars, W ones each *)
let sparse_cover ~nvars ~cubes ~ones =
  List.init cubes (fun _ ->
      let chosen = Array.make nvars false in
      let placed = ref 0 in
      while !placed < ones do
        let v = rand_int nvars in
        if not chosen.(v) then begin
          chosen.(v) <- true;
          incr placed
        end
      done;
      List.init nvars (fun v -> (v, chosen.(v))))

let build_cover_bdd man lits_list =
  List.fold_left
    (fun acc lits -> Bdd.bor man acc (Bdd.cube_of_literals man lits))
    (Bdd.ff man) lits_list

let build_cover_dd man lits_list =
  List.fold_left
    (fun acc lits -> Dd.bor man acc (Dd.cube_of_literals man lits))
    (Dd.ff man) lits_list

let parity_vars ~nvars ~width =
  List.init width (fun i -> i * nvars / width)

let build_parity_bdd man vars =
  List.fold_left (fun acc v -> Bdd.bxor man acc (Bdd.ithvar man v)) (Bdd.ff man) vars

let build_parity_dd man vars =
  List.fold_left (fun acc v -> Dd.bxor man acc (Dd.ithvar man v)) (Dd.ff man) vars

type instance = {
  i_name : string;
  i_family : string;
  i_nvars : int;
  i_build_bdd : Bdd.man -> Bdd.t;
  i_build_dd : Dd.man -> Dd.t;
}

let instances ~smoke =
  let cover name nvars cubes ones =
    let lits = sparse_cover ~nvars ~cubes ~ones in
    {
      i_name = name;
      i_family = "generator";
      i_nvars = nvars;
      i_build_bdd = (fun man -> build_cover_bdd man lits);
      i_build_dd = (fun man -> build_cover_dd man lits);
    }
  and parity name nvars width =
    let vars = parity_vars ~nvars ~width in
    {
      i_name = name;
      i_family = "parity-spread";
      i_nvars = nvars;
      i_build_bdd = (fun man -> build_parity_bdd man vars);
      i_build_dd = (fun man -> build_parity_dd man vars);
    }
  in
  if smoke then
    [
      cover "cover-48x12" 48 12 3;
      cover "cover-64x16" 64 16 3;
      parity "parity-48x6" 48 6;
    ]
  else
    [
      cover "cover-64x24" 64 24 3;
      cover "cover-96x32" 96 32 4;
      cover "cover-128x40" 128 40 4;
      cover "cover-192x48" 192 48 5;
      parity "parity-96x8" 96 8;
      parity "parity-192x12" 192 12;
    ]

type row = {
  r_inst : instance;
  r_mode : Dd.mode;
  r_nodes : int;
  r_build_ms : float;
  r_ops_ms : float;
  r_minterms : float;
  r_folds : int;
  r_mk : int;
}

let now () = Unix.gettimeofday ()

let measure_instance inst =
  let bman = Bdd.create ~nvars:inst.i_nvars () in
  let fb = inst.i_build_bdd bman in
  let want_minterms = Bdd.count_minterms bman fb ~nvars:inst.i_nvars in
  List.map
    (fun mode ->
      let dman = Dd.create ~nvars:inst.i_nvars ~mode () in
      let t0 = now () in
      let u = Dd.of_bdd dman bman fb in
      let build_ms = 1000. *. (now () -. t0) in
      let t0 = now () in
      let u' = inst.i_build_dd dman in
      let ops_ms = 1000. *. (now () -. t0) in
      (* correctness gates: the native build and the conversion agree,
         the round trip is bit-identical, the count matches the oracle *)
      if not (Dd.equal u u') then
        fail "%s/%s: native build disagrees with of_bdd" inst.i_name
          (Dd.mode_name mode);
      if not (Bdd.equal (Dd.to_bdd dman bman u) fb) then
        fail "%s/%s: to_bdd round trip broke" inst.i_name (Dd.mode_name mode);
      let got = Dd.count_minterms dman u ~nvars:inst.i_nvars in
      if
        abs_float (got -. want_minterms)
        > 1e-9 *. (1. +. abs_float want_minterms)
      then
        fail "%s/%s: minterms %g, oracle %g" inst.i_name (Dd.mode_name mode)
          got want_minterms;
      let folds, mk = Dd.chain_counters dman in
      {
        r_inst = inst;
        r_mode = mode;
        r_nodes = Dd.size u;
        r_build_ms = build_ms;
        r_ops_ms = ops_ms;
        r_minterms = got;
        r_folds = folds;
        r_mk = mk;
      })
    Dd.all_modes

(* the striped ~shared:true table must hash-cons chain tags exactly like
   the sequential one: same function, same canonical form, same size *)
let check_shared_layout inst =
  List.iter
    (fun mode ->
      let seq = Dd.create ~nvars:inst.i_nvars ~mode () in
      let par = Dd.create ~nvars:inst.i_nvars ~mode ~shared:true () in
      let us = inst.i_build_dd seq and up = inst.i_build_dd par in
      if Dd.size us <> Dd.size up then
        fail "%s/%s: shared table size %d, sequential %d" inst.i_name
          (Dd.mode_name mode) (Dd.size up) (Dd.size us))
    Dd.all_modes

let geomean = function
  | [] -> 0.
  | l ->
      exp (List.fold_left (fun a x -> a +. log (max x 1e-9)) 0. l
           /. float_of_int (List.length l))

let reductions rows =
  (* per generator-family instance: plain-BDD nodes / chained nodes *)
  let nodes name mode =
    List.find_map
      (fun r ->
        if r.r_inst.i_name = name && r.r_mode = mode then Some (float_of_int r.r_nodes)
        else None)
      rows
  in
  let gens =
    List.sort_uniq compare
      (List.filter_map
         (fun r ->
           if r.r_inst.i_family = "generator" then Some r.r_inst.i_name
           else None)
         rows)
  in
  let ratio_for chained =
    geomean
      (List.filter_map
         (fun name ->
           match (nodes name Dd.Bdd, nodes name chained) with
           | Some b, Some c -> Some (b /. c)
           | _ -> None)
         gens)
  in
  (ratio_for Dd.Cbdd, ratio_for Dd.Czdd)

let report rows (red_cbdd, red_czdd) =
  Obj
    [
      ("schema", Str schema_version);
      ("host_cpus", num_int (Domain.recommended_domain_count ()));
      ("generator_reduction_cbdd", Num red_cbdd);
      ("generator_reduction_czdd", Num red_czdd);
      ( "rows",
        Arr
          (List.map
             (fun r ->
               Obj
                 [
                   ("name", Str r.r_inst.i_name);
                   ("family", Str r.r_inst.i_family);
                   ("nvars", num_int r.r_inst.i_nvars);
                   ("mode", Str (Dd.mode_name r.r_mode));
                   ("nodes", num_int r.r_nodes);
                   ("build_ms", Num r.r_build_ms);
                   ("ops_ms", Num r.r_ops_ms);
                   ("minterms", Num r.r_minterms);
                   ("chain_folds", num_int r.r_folds);
                   ("chain_mk", num_int r.r_mk);
                 ])
             rows) );
    ]

let () =
  let smoke = ref false and out = ref "BENCH_compress.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "-o" :: path :: rest ->
        out := path;
        parse rest
    | arg :: _ -> fail "usage: compress [--smoke] [-o FILE] (unknown %s)" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let insts = instances ~smoke:!smoke in
  let rows = List.concat_map measure_instance insts in
  check_shared_layout (List.hd insts);
  let ((red_cbdd, red_czdd) as reds) = reductions rows in
  List.iter
    (fun r ->
      Printf.eprintf "%-14s %-13s %-5s %7d nodes %8.2fms build %8.2fms ops\n"
        r.r_inst.i_name r.r_inst.i_family (Dd.mode_name r.r_mode) r.r_nodes
        r.r_build_ms r.r_ops_ms)
    rows;
  Printf.eprintf
    "generator family: cbdd %.1fx smaller than bdd, czdd %.1fx smaller\n"
    red_cbdd red_czdd;
  (* the acceptance gate: chain reduction must halve the chain-heavy
     family, in every run, not just the committed artifact *)
  if red_cbdd < 2.0 then
    fail "cbdd reduction %.2fx < 2x on the generator family" red_cbdd;
  if red_czdd < 2.0 then
    fail "czdd reduction %.2fx < 2x on the generator family" red_czdd;
  Obs.Json.write_file !out (report rows reds);
  Printf.printf "compress: wrote %s (%d rows, cbdd %.1fx, czdd %.1fx)\n" !out
    (List.length rows) red_cbdd red_czdd
