(* Benchmark harness: regenerates every table of the paper's evaluation
   (Section 4) on the synthetic substitutes described in DESIGN.md, plus
   ablation sweeps and Bechamel micro-benchmarks of the kernels.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table1  -- one experiment
       (table1 | table2 | table3 | table4 | ablations | kernels | smoke | ooc)

   Flags:
     --jobs N   worker domains for the pool sweeps and the table-1 engine
                fan-out (default: Domain.recommended_domain_count).  Table
                contents are identical for every N; only wall time changes.
     --smoke    a seconds-long slice of the suite that still exercises the
                parallel path end to end (for CI; same as the "smoke"
                experiment name).
     --store-dir DIR        host the "ooc" experiment's cold/spill files
                in DIR instead of a fresh temp directory.
     --hot-node-budget N    hot unique-table ceiling for the "ooc"
                experiment (default: a quarter of the oracle's headroom).
     --trace FILE    record a Chrome trace-event span trace (Perfetto);
                one lane per worker domain.
     --metrics FILE  write an obs-metrics/v1 snapshot of the run.
                Both write their "-> FILE" note to stderr, so stdout stays
                byte-identical with and without them (the smoke-determinism
                contract that `make check` diffs across --jobs values).

   Absolute numbers differ from the paper (different circuits, different
   hardware, simulator substrate); the *shape* -- who wins, by what rough
   factor -- is what EXPERIMENTS.md tracks. *)

let jobs = ref (Mt.Runner.default_jobs ())

(* --faults SPEC arms injection and flips the runner fan-outs to
   supervised retries; stdout stays byte-identical when unused *)
let retry = ref Mt.Runner.no_retry

(* out-of-core knobs for the "ooc" experiment: where the tiered store
   puts its level/spill files, and the hot unique-table ceiling *)
let store_dir = ref None
let hot_budget = ref None

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

(* ------------------------------------------------------------------ *)
(* Table 1: reachability analysis with BDD approximations              *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  name : string;
  circuit : Circuit.t;
  rua : High_density.params;
  sp : High_density.params;
  budget : float; (* CPU-seconds granted to each engine *)
}

let table1_rows () =
  let hd = High_density.default in
  [
    {
      name = "s3330-like";
      circuit = Generate.handshake_pipeline ~stages:14;
      rua = { hd with threshold = 0; quality = 0.9 };
      sp =
        {
          hd with
          meth = Approx.SP;
          threshold = 1000;
          pimg = Some (100000, 40000);
        };
      budget = 240.;
    };
    {
      name = "s1269-like";
      circuit = Generate.shifter_datapath ~width:12;
      rua = { hd with threshold = 0; quality = 1.0 };
      sp =
        {
          hd with
          meth = Approx.SP;
          threshold = 500;
          pimg = Some (100000, 40000);
        };
      budget = 240.;
    };
    {
      name = "s5378-like";
      circuit = Generate.dense_controller ~latches:26 ~seed:11;
      rua = { hd with threshold = 2000; quality = 1.4 };
      sp = { hd with meth = Approx.SP; threshold = 1500 };
      budget = 240.;
    };
    {
      name = "am2910-like";
      circuit = Generate.microsequencer ~addr_bits:6 ~stack_depth:2;
      rua = { hd with threshold = 0; quality = 1.0 };
      sp = { hd with meth = Approx.SP; threshold = 1000 };
      budget = 240.;
    };
  ]

(* the 1998-sized memory ceiling of DESIGN.md *)
let table1_node_limit = 1_500_000

let pimg_cell = function
  | None -> "NA"
  | Some (a, b) -> Printf.sprintf "%d/%d" a b

(* what an engine job sends back across the domain boundary: plain data,
   never a BDD from the worker's private manager *)
type engine_cell = { exact : bool; wall : float; states : float }

let result_cell budget = function
  | None -> "err"
  | Some c ->
      if c.exact then Printf.sprintf "%.1f" c.wall
      else if c.wall < budget then "mem"
      else Printf.sprintf ">%.0f" budget

(* The three engines of one row, as runner jobs over a relation that was
   built once in the calling domain and is imported per worker. *)
let table1_engines row exported =
  let engine label run =
    Mt.Runner.job ~label:(row.name ^ "." ^ label) (fun man ->
        let trans = Trans.import man exported in
        let r, wall = Obs.Timing.time (fun () -> run trans) in
        { exact = r.Traversal.exact; wall; states = r.Traversal.states })
  in
  [
    engine "bfs" (fun trans ->
        Bfs.run ~time_limit:row.budget ~node_limit:table1_node_limit trans);
    engine "rua" (fun trans ->
        High_density.run ~time_limit:row.budget ~node_limit:table1_node_limit
          ~params:row.rua trans);
    engine "sp" (fun trans ->
        High_density.run ~time_limit:row.budget ~node_limit:table1_node_limit
          ~params:row.sp trans);
  ]

let table1 () =
  section "Table 1: reachability analysis using BDD approximations";
  note
    "(paper: s3330 BFS 3204s vs RUA 562s / SP 1351s; s1269 52691s vs 290/525;";
  note
    " s5378opt 1454s vs 1140/575; am2910 BFS >2 weeks vs RUA 217s / SP 224s)";
  note
    "all engines run under a %d-node ceiling (the 1998 memory budget of"
    table1_node_limit;
  note
    " DESIGN.md); 'mem' = died on the ceiling, '>N' = exceeded the time budget";
  (* build each machine's partitioned relation once, export it, and fan the
     3 engines x 4 machines out over the worker pool *)
  let specs =
    List.map
      (fun row ->
        note "compiling %s (%s)..." row.name (Circuit.stats row.circuit);
        (row, Trans.export (Trans.build (Compile.compile row.circuit))))
      (table1_rows ())
  in
  let results =
    Mt.Runner.run ~jobs:!jobs ~retry:!retry
      (List.concat_map (fun (row, x) -> table1_engines row x) specs)
  in
  note "\nper-job runner reports:";
  List.iter
    (fun (r : _ Mt.Runner.result) ->
      note "  %s" (Format.asprintf "%a" Mt.Runner.pp_report r.Mt.Runner.report))
    results;
  let cells = List.map Mt.Runner.value results in
  let rec by_row specs cells =
    match (specs, cells) with
    | [], [] -> []
    | (row, _) :: specs', bfs :: rua :: sp :: cells' ->
        let states =
          List.find_map
            (function Some c when c.exact -> Some c.states | _ -> None)
            [ bfs; rua; sp ]
        in
        [
          row.name;
          string_of_int (Circuit.num_latches row.circuit);
          (match states with
          | Some s -> Printf.sprintf "%.6g" s
          | None -> "?");
          result_cell row.budget bfs;
          string_of_int row.rua.High_density.threshold;
          Printf.sprintf "%.1f" row.rua.High_density.quality;
          pimg_cell row.rua.High_density.pimg;
          result_cell row.budget rua;
          string_of_int row.sp.High_density.threshold;
          pimg_cell row.sp.High_density.pimg;
          result_cell row.budget sp;
        ]
        :: by_row specs' cells'
    | _ -> assert false
  in
  Tables.print
    ~headers:
      [
        "Ckt"; "FF"; "States"; "BFS time"; "Th"; "Qual"; "PImg"; "RUA time";
        "Th"; "PImg"; "SP time";
      ]
    ~rows:(by_row specs cells)

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3: comparison of approximation methods                 *)
(* ------------------------------------------------------------------ *)

let shared_pool = lazy (Pool.build ~min_nodes:500 ~jobs:!jobs ())

let table2 () =
  section "Table 2: comparison of approximation methods I (simple methods)";
  note
    "(paper, 336 BDDs >= 5000 nodes: F 14449 nodes/0 wins; HB 24.5 nodes/3 wins;";
  note
    " SP 41.9/6; UA 28.3/24; RUA 30.4 nodes, 6.04e44 minterms, 219 wins)";
  let pool = Lazy.force shared_pool in
  note "pool: %s" (Pool.describe pool);
  (* the paper's protocol: RUA and UA run at threshold 0 / quality 1, and
     RUA's result size is the budget given to HB and SP *)
  let methods =
    [
      ("F", fun _ f -> f);
      ( "HB",
        fun man f ->
          let budget = Bdd.size (Remap.approximate man f) in
          Heavy_branch.approximate man ~threshold:budget f );
      ( "SP",
        fun man f ->
          let budget = Bdd.size (Remap.approximate man f) in
          Short_paths.approximate man ~threshold:budget f );
      ("UA", fun man f -> Under_approx.approximate man f);
      ("RUA", fun man f -> Remap.approximate man f);
    ]
  in
  let rows = Scoreboard.approx_table ~jobs:!jobs pool methods in
  Tables.print ~headers:Scoreboard.approx_headers
    ~rows:(Scoreboard.approx_rows rows)

let table3 () =
  section "Table 3: comparison of approximation methods II (compound)";
  note "(paper: C1 30.3 nodes, 6.14e44, 125 wins; C2 14.7, 2.59e44, 124)";
  let pool = Lazy.force shared_pool in
  let methods =
    [
      ("C1", fun man f -> Compound.c1 man f);
      ("C2", fun man f -> Compound.c2 man f);
    ]
  in
  let rows = Scoreboard.approx_table ~jobs:!jobs pool methods in
  Tables.print ~headers:Scoreboard.approx_headers
    ~rows:(Scoreboard.approx_rows rows)

(* ------------------------------------------------------------------ *)
(* Table 4: comparison of decomposition methods                        *)
(* ------------------------------------------------------------------ *)

let decomp_methods =
  [
    ("Cofactor", fun man f -> Decomp.conj_cofactor man f);
    ("Disjoint", fun man f -> Decomp_points.disjoint man f);
    ("Band", fun man f -> Decomp_points.band man f);
  ]

let table4 () =
  section "Table 4: comparison of decomposition methods";
  note
    "(paper, >=5000 nodes: Cofactor wins 192/279; Disjoint 57; Band 26;";
  note " on the 11 BDDs >= 20000 nodes Disjoint wins 8/11)";
  let pool = Lazy.force shared_pool in
  let class_of ~min_nodes =
    List.filter (fun e -> Bdd.size e.Pool.f >= min_nodes) pool
  in
  List.iter
    (fun min_nodes ->
      let entries = class_of ~min_nodes in
      if entries <> [] then begin
        let sizes =
          List.map (fun e -> float_of_int (Bdd.size e.Pool.f)) entries
        in
        note "\nMin. nodes = %d, |f| = %.1f, %d BDDs" min_nodes
          (Stats.geometric_mean sizes)
          (List.length entries);
        let rows = Scoreboard.decomp_table ~jobs:!jobs entries decomp_methods in
        Tables.print ~headers:Scoreboard.decomp_headers
          ~rows:(Scoreboard.decomp_rows rows)
      end)
    [ 500; 2000 ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablation: RUA quality factor sweep";
  (* sweeps re-run every method several times: bound the pool to its
     small-to-medium functions to keep the whole suite CI-sized *)
  let pool =
    List.filter (fun e -> Bdd.size e.Pool.f <= 8000) (Lazy.force shared_pool)
  in
  let methods =
    List.map
      (fun q ->
        ( Printf.sprintf "RUA q=%.1f" q,
          fun man f -> Remap.approximate man ~quality:q f ))
      [ 0.5; 0.8; 1.0; 1.2; 1.5; 2.0 ]
    @ [ ("iterated", fun man f -> Compound.iterated_rua man f) ]
  in
  Tables.print ~headers:Scoreboard.approx_headers
    ~rows:(Scoreboard.approx_rows (Scoreboard.approx_table ~jobs:!jobs pool methods));

  section "Ablation: UA convex-combination weight";
  let methods =
    List.map
      (fun w ->
        ( Printf.sprintf "UA a=%.2f" w,
          fun man f ->
            Under_approx.approximate man
              ~params:{ Under_approx.threshold = 0; weight = w }
              f ))
      [ 0.25; 0.5; 0.75 ]
  in
  Tables.print ~headers:Scoreboard.approx_headers
    ~rows:(Scoreboard.approx_rows (Scoreboard.approx_table ~jobs:!jobs pool methods));

  section "Ablation: Band placement";
  let methods =
    List.map
      (fun (lo, hi) ->
        ( Printf.sprintf "Band %.2f-%.2f" lo hi,
          fun man f -> Decomp_points.band man ~band:(lo, hi) f ))
      [ (0.1, 0.35); (0.35, 0.65); (0.65, 0.9) ]
  in
  Tables.print ~headers:Scoreboard.decomp_headers
    ~rows:(Scoreboard.decomp_rows (Scoreboard.decomp_table ~jobs:!jobs pool methods));

  section "Ablation: over-approximate traversal (machine decomposition)";
  note "(the dual of Section 2: Cho et al.'s MBM overapproximation, ref [7])";
  List.iter
    (fun c ->
      let compiled = Compile.compile c in
      let trans = Trans.build compiled in
      let t0 = Sys.time () in
      let over = Approx_traversal.run trans in
      let t_over = Sys.time () -. t0 in
      let t0 = Sys.time () in
      let exact = Bfs.run trans in
      let t_exact = Sys.time () -. t0 in
      let over_states = Compile.state_count compiled over in
      note "  %-24s exact %.6g states (%.2fs)   over %.6g states (%.2fs, x%.2f)"
        (Circuit.name c) exact.Traversal.states t_exact over_states t_over
        (over_states /. exact.Traversal.states))
    [
      Generate.microsequencer ~addr_bits:3 ~stack_depth:2;
      Generate.handshake_pipeline ~stages:6;
      Generate.dense_controller ~latches:16 ~seed:11;
      Generate.lfsr ~bits:8;
    ];

  section "Ablation: partitioned representation (Narayan et al., refs 19/20)";
  note "(windows vs monolithic size on the largest pool functions)";
  let biggest =
    List.filteri (fun i _ -> i < 8)
      (List.sort
         (fun a b -> compare (Bdd.size b.Pool.f) (Bdd.size a.Pool.f))
         (Lazy.force shared_pool))
  in
  List.iter
    (fun { Pool.man; f; label; _ } ->
      let p = Partitioned.of_bdd man ~parts:8 f in
      note "  %-28s |f| = %6d   max window = %6d   shared = %6d (%d windows)"
        label (Bdd.size f)
        (Partitioned.max_window_size p)
        (Partitioned.shared_size p)
        (List.length (Partitioned.windows p)))
    biggest;

  section "Ablation: McMillan's canonical conjunctive decomposition";
  let sample = List.filteri (fun i _ -> i < 12) pool in
  let factors = ref [] and shared = ref [] and mono = ref [] in
  List.iter
    (fun { Pool.man; f; _ } ->
      let gs = Mcmillan.decompose man f in
      factors := float_of_int (List.length gs) :: !factors;
      shared := float_of_int (Bdd.shared_size gs) :: !shared;
      mono := float_of_int (Bdd.size f) :: !mono)
    sample;
  note "  over %d functions: %.1f factors on average, shared size %.1f vs |f| %.1f"
    (List.length sample)
    (Stats.arithmetic_mean !factors)
    (Stats.geometric_mean !shared)
    (Stats.geometric_mean !mono);

  section "Ablation: replacement types used by RUA";
  let pool = Lazy.force shared_pool in
  let totals = ref (0, 0, 0) in
  List.iter
    (fun { Pool.man; f; _ } ->
      let _, st = Remap.approximate_with_stats man f in
      let a, b, c = !totals in
      totals :=
        (a + st.Remap.remaps, b + st.Remap.grandchild, c + st.Remap.zeroes))
    pool;
  let r, g, z = !totals in
  note "across the pool: %d remaps, %d grandchild replacements, %d zeroes" r g z

(* ------------------------------------------------------------------ *)
(* Density-regime experiment (EXPERIMENTS.md, Table 2 discussion)      *)
(* ------------------------------------------------------------------ *)

let regimes () =
  section "Density regimes: RUA vs SP on dense and sparse pools";
  note
    "(the paper's pool is sparse industrial functions, where RUA dominates;";
  note " dense random cones flatter SP's implicant packing — see Table 2)";
  let netlists =
    List.map
      (fun seed ->
        Generate.random_netlist ~inputs:18 ~gates:120 ~outputs:6 ~seed)
      (List.init 20 (fun i -> i + 50))
  in
  let dense_pool =
    List.concat_map (Pool.entries_of_circuit ~min_nodes:300) netlists
  in
  let sparse_pool =
    List.concat_map (Pool.product_entries_of_circuit ~min_nodes:300) netlists
  in
  let duel name pool =
    let methods =
      [
        ("RUA", fun man f -> Remap.approximate man f);
        ( "SP",
          fun man f ->
            Short_paths.approximate man
              ~threshold:(Bdd.size (Remap.approximate man f))
              f );
      ]
    in
    let rows = Scoreboard.approx_table ~jobs:!jobs pool methods in
    let weights =
      Stats.geometric_mean
        (List.map (fun e -> Bdd.weight e.Pool.man e.Pool.f) pool)
    in
    note "
%s pool: %s, geo-mean minterm fraction %.2g" name
      (Pool.describe pool) weights;
    Tables.print ~headers:Scoreboard.approx_headers
      ~rows:(Scoreboard.approx_rows rows)
  in
  duel "dense" dense_pool;
  duel "sparse" sparse_pool

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per table                     *)
(* ------------------------------------------------------------------ *)

let kernels () =
  section "Bechamel kernels (one per table)";
  let open Bechamel in
  let pool = Lazy.force shared_pool in
  let entry = List.hd pool in
  let man = entry.Pool.man and f = entry.Pool.f in
  note "kernel operand: %s, |f| = %d" entry.Pool.label (Bdd.size f);
  (* table 1 kernel: one dense-subset + image step *)
  let circuit = Generate.microsequencer ~addr_bits:3 ~stack_depth:2 in
  let compiled = Compile.compile circuit in
  let trans = Trans.build compiled in
  let front = Image.exact trans compiled.Compile.init in
  let tman = compiled.Compile.man in
  let tests =
    [
      Test.make ~name:"table1: subset+image step"
        (Staged.stage (fun () ->
             let d = Remap.approximate tman front in
             ignore (Image.exact trans d)));
      Test.make ~name:"table2: RUA"
        (Staged.stage (fun () -> ignore (Remap.approximate man f)));
      Test.make ~name:"table3: C1"
        (Staged.stage (fun () -> ignore (Compound.c1 man f)));
      Test.make ~name:"table4: Cofactor decomposition"
        (Staged.stage (fun () -> ignore (Decomp.conj_cofactor man f)));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> note "  %-34s %12.0f ns/run" name est
          | Some _ | None -> note "  %-34s (no estimate)" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Smoke: a seconds-long slice that still exercises the parallel path   *)
(* ------------------------------------------------------------------ *)

let smoke () =
  section "Smoke: parallel pool sweep";
  let circuits =
    [
      Generate.microsequencer ~addr_bits:4 ~stack_depth:2;
      Generate.shifter_datapath ~width:8;
      Generate.random_netlist ~inputs:14 ~gates:60 ~outputs:4 ~seed:7;
    ]
  in
  let pool = List.concat_map (Pool.entries_of_circuit ~min_nodes:150) circuits in
  note "pool: %s" (Pool.describe pool);
  let methods =
    [
      ("F", fun _ f -> f);
      ( "SP",
        fun man f ->
          Short_paths.approximate man
            ~threshold:(Bdd.size (Remap.approximate man f))
            f );
      ("RUA", fun man f -> Remap.approximate man f);
    ]
  in
  Tables.print ~headers:Scoreboard.approx_headers
    ~rows:(Scoreboard.approx_rows (Scoreboard.approx_table ~jobs:!jobs pool methods));
  Tables.print ~headers:Scoreboard.decomp_headers
    ~rows:
      (Scoreboard.decomp_rows (Scoreboard.decomp_table ~jobs:!jobs pool decomp_methods));
  (* a tiny reachability fan-out through Trans.export/import: build the
     relation once, run both engines in worker-private managers *)
  let compiled = Compile.compile (Generate.microsequencer ~addr_bits:3 ~stack_depth:2) in
  let x = Trans.export (Trans.build compiled) in
  let engine label run =
    Mt.Runner.job ~label (fun man ->
        let r = run (Trans.import man x) in
        (r.Traversal.exact, r.Traversal.states))
  in
  let results =
    Mt.Runner.run ~jobs:!jobs ~retry:!retry
      [
        engine "smoke.bfs" (fun t -> Bfs.run ~node_limit:200_000 t);
        engine "smoke.rua" (fun t ->
            High_density.run ~node_limit:200_000
              ~params:{ High_density.default with threshold = 0 }
              t);
      ]
  in
  List.iter
    (fun (r : _ Mt.Runner.result) ->
      match Mt.Runner.value r with
      | Some (exact, states) ->
          note "  %-12s %s %.6g states"
            r.Mt.Runner.report.Mt.Runner.label
            (if exact then "exact" else "partial")
            states
      | None ->
          note "  %-12s %s" r.Mt.Runner.report.Mt.Runner.label
            (Format.asprintf "%a" Mt.Runner.pp_outcome r.Mt.Runner.outcome))
    results

(* ------------------------------------------------------------------ *)
(* Out-of-core reachability: the tiered store under a hot-node budget  *)
(* ------------------------------------------------------------------ *)

let ooc () =
  section "Out-of-core reachability: tiered store vs in-RAM BFS";
  let compiled =
    Compile.compile (Generate.microsequencer ~addr_bits:4 ~stack_depth:2)
  in
  let trans = Trans.build compiled in
  let oracle = Bfs.run trans in
  let man2 = Bdd.create ~nvars:0 () in
  let trans2 = Trans.import man2 (Trans.export trans) in
  let baseline = Bdd.unique_size man2 in
  let budget =
    match !hot_budget with
    | Some b -> b
    | None -> baseline + ((oracle.Traversal.peak_live_nodes - baseline) / 4)
  in
  let r = Ooc.run ?store_dir:!store_dir ~hot_budget:budget trans2 in
  let matched =
    Bdd.equal oracle.Traversal.reached
      (Bdd.import (Trans.man trans) r.Ooc.reached)
  in
  note "in-RAM oracle: %.6g states, peak %d nodes" oracle.Traversal.states
    oracle.Traversal.peak_live_nodes;
  note "out-of-core @%d hot nodes: %a" budget
    (fun () x -> Format.asprintf "%a" Ooc.pp x)
    r;
  note "reached sets %s" (if matched then "match bit-for-bit" else "DIFFER");
  if not (matched && r.Ooc.exact) then exit 1

(* ------------------------------------------------------------------ *)

let () =
  let set_jobs n =
    match int_of_string_opt n with
    | Some j when j >= 1 -> jobs := j
    | _ ->
        Printf.eprintf "--jobs wants a positive integer, got %s\n" n;
        exit 1
  in
  let trace = ref None and metrics = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs wants a positive integer\n";
        exit 1
    | "--jobs" :: n :: rest ->
        set_jobs n;
        parse acc rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
        set_jobs (String.sub arg 7 (String.length arg - 7));
        parse acc rest
    | [ "--trace" ] | [ "--metrics" ] ->
        Printf.eprintf "--trace/--metrics want a file name\n";
        exit 1
    | "--trace" :: path :: rest ->
        trace := Some path;
        parse acc rest
    | "--metrics" :: path :: rest ->
        metrics := Some path;
        parse acc rest
    | "--smoke" :: rest -> parse ("smoke" :: acc) rest
    | [ "--store-dir" ] ->
        Printf.eprintf "--store-dir wants a directory\n";
        exit 1
    | "--store-dir" :: dir :: rest ->
        store_dir := Some dir;
        parse acc rest
    | [ "--hot-node-budget" ] ->
        Printf.eprintf "--hot-node-budget wants a positive integer\n";
        exit 1
    | "--hot-node-budget" :: n :: rest -> (
        match int_of_string_opt n with
        | Some b when b >= 1 ->
            hot_budget := Some b;
            parse acc rest
        | _ ->
            Printf.eprintf "--hot-node-budget wants a positive integer, got %s\n"
              n;
            exit 1)
    | [ "--faults" ] ->
        Printf.eprintf "--faults wants a spec (e.g. seed=42,job_crash=0.2)\n";
        exit 1
    | "--faults" :: spec :: rest ->
        (match Resil.Fault.config_of_string spec with
        | Ok c ->
            Resil.Fault.arm (Some c);
            retry := Mt.Runner.default_retry
        | Error m ->
            Printf.eprintf "--faults: %s\n" m;
            exit 1);
        parse acc rest
    | arg :: rest -> parse (arg :: acc) rest
  in
  let want =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> [ "table2"; "table3"; "table4"; "ablations"; "kernels"; "table1" ]
    | names -> names
  in
  Option.iter (fun path -> Obs.Trace.start ~out:path ()) !trace;
  if !metrics <> None then Obs.Metrics.set_recording true;
  List.iter
    (fun name ->
      let run =
        match name with
        | "table1" -> table1
        | "table2" -> table2
        | "table3" -> table3
        | "table4" -> table4
        | "ablations" -> ablations
        | "regimes" -> regimes
        | "kernels" -> kernels
        | "smoke" -> smoke
        | "ooc" -> ooc
        | other ->
            Printf.eprintf
              "unknown experiment %s (want table1..table4, ablations, \
               regimes, kernels, smoke, ooc)\n"
              other;
            exit 1
      in
      Obs.Trace.with_span ("experiment:" ^ name) run)
    want;
  (* stderr, never stdout: the smoke output must stay byte-identical
     across --jobs and with/without observability *)
  Obs.Trace.stop ();
  if Resil.Fault.enabled () then
    Printf.eprintf "faults injected: %d (%s)\n%!" (Resil.Fault.injected ())
      (match Resil.Fault.armed () with
      | Some c -> Resil.Fault.config_to_string c
      | None -> assert false);
  Option.iter (fun path -> Printf.eprintf "trace -> %s\n%!" path) !trace;
  Option.iter
    (fun path ->
      Obs.Metrics.write Obs.Metrics.default path;
      Printf.eprintf "metrics -> %s\n%!" path)
    !metrics
