(* Out-of-core reachability benchmark:

     dune exec bench/ooc.exe                        -- full run -> BENCH_ooc.json
     dune exec bench/ooc.exe -- --smoke             -- CI-sized run
     dune exec bench/ooc.exe -- -o FILE             -- choose the output path
     dune exec bench/ooc.exe -- --validate FILE     -- schema-check a report

   Each run pits Ooc.run against the unrestricted in-RAM Bfs oracle on
   the same circuit.  The hot-node budget is derived from the oracle's
   measured peak (baseline + (peak - baseline) / 4), so the out-of-core
   engine is guaranteed to blow the budget, migrate the reached set to
   the cold tier, and finish the exploration through the streaming
   apply.  The report records, per circuit, both wall times, the budget,
   the hot/cold/spilled peaks, and whether the out-of-core reached set
   matched the oracle bit-for-bit — a run that is not Exact or does not
   match is a hard failure (exit 1), not just a report field.

   The report is machine-readable JSON (schema "bdd-ooc-bench/v1"), one
   object per circuit under "runs". *)

open Obs.Json

let schema_version = "bdd-ooc-bench/v1"

type sample = {
  r_name : string;
  r_budget : int;
  r_oracle_peak : int;
  r_oracle_states : float;
  r_oracle_wall : float;
  r_ooc_wall : float;
  r_states : float;
  r_iterations : int;
  r_images : int;
  r_migrations : int;
  r_peak_hot : int;
  r_peak_total : int;
  r_peak_cold : int;
  r_spilled : int;
  r_exact : bool;
  r_match : bool;
}

let json_of_sample s =
  Obj
    [
      ("name", Str s.r_name);
      ("hot_node_budget", num_int s.r_budget);
      ("oracle_peak_nodes", num_int s.r_oracle_peak);
      ("oracle_states", Num s.r_oracle_states);
      ("oracle_wall_s", Num s.r_oracle_wall);
      ("ooc_wall_s", Num s.r_ooc_wall);
      ("states", Num s.r_states);
      ("iterations", num_int s.r_iterations);
      ("images", num_int s.r_images);
      ("migrations", num_int s.r_migrations);
      ("peak_hot_nodes", num_int s.r_peak_hot);
      ("peak_total_nodes", num_int s.r_peak_total);
      ("peak_cold_nodes", num_int s.r_peak_cold);
      ("spilled_bytes", num_int s.r_spilled);
      ("exact", num_int (if s.r_exact then 1 else 0));
      ("reached_match", num_int (if s.r_match then 1 else 0));
    ]

(* One circuit: oracle first, then the same transition relation replayed
   out-of-core on a fresh manager under a budget below the oracle's peak. *)
let bench_circuit circuit =
  let compiled = Compile.compile circuit in
  let trans = Trans.build compiled in
  let name = Circuit.name circuit in
  Printf.eprintf "  %-24s oracle ...%!" name;
  let oracle, oracle_wall = Obs.Timing.time (fun () -> Bfs.run trans) in
  let man2 = Bdd.create ~nvars:0 () in
  let trans2 = Trans.import man2 (Trans.export trans) in
  let baseline = Bdd.unique_size man2 in
  let budget =
    baseline + ((oracle.Traversal.peak_live_nodes - baseline) / 4)
  in
  Printf.eprintf " %.2fs (peak %d)  ooc @%d ...%!" oracle_wall
    oracle.Traversal.peak_live_nodes budget;
  let r, ooc_wall =
    Obs.Timing.time (fun () -> Ooc.run ~hot_budget:budget trans2)
  in
  let matched =
    Bdd.equal oracle.Traversal.reached
      (Bdd.import (Trans.man trans) r.Ooc.reached)
  in
  Printf.eprintf " %.2fs  %d migration(s), %d cold, %d B spilled, %s\n%!"
    ooc_wall r.Ooc.migrations r.Ooc.peak_cold_nodes r.Ooc.spilled_bytes
    (if r.Ooc.exact && matched then "exact+match" else "MISMATCH");
  {
    r_name = name;
    r_budget = budget;
    r_oracle_peak = oracle.Traversal.peak_live_nodes;
    r_oracle_states = oracle.Traversal.states;
    r_oracle_wall = oracle_wall;
    r_ooc_wall = ooc_wall;
    r_states = r.Ooc.states;
    r_iterations = r.Ooc.iterations;
    r_images = r.Ooc.images;
    r_migrations = r.Ooc.migrations;
    r_peak_hot = r.Ooc.peak_hot_nodes;
    r_peak_total = r.Ooc.peak_total_nodes;
    r_peak_cold = r.Ooc.peak_cold_nodes;
    r_spilled = r.Ooc.spilled_bytes;
    r_exact = r.Ooc.exact;
    r_match = matched;
  }

let circuits ~smoke =
  if smoke then [ Generate.johnson ~bits:6; Generate.fifo_controller ~depth:5 ]
  else
    [
      Generate.johnson ~bits:8;
      Generate.fifo_controller ~depth:7;
      Generate.arbiter ~clients:5;
      Generate.microsequencer ~addr_bits:4 ~stack_depth:2;
    ]

let report ~smoke =
  let samples = List.map bench_circuit (circuits ~smoke) in
  let ok =
    List.for_all
      (fun s ->
        s.r_exact && s.r_match && s.r_migrations > 0
        && s.r_budget < s.r_oracle_peak
        && s.r_peak_cold > 0 && s.r_spilled > 0)
      samples
  in
  let j =
    Obj
      [
        ("schema", Str schema_version);
        ("mode", Str (if smoke then "smoke" else "full"));
        ("ocaml", Str Sys.ocaml_version);
        (* 0 on platforms without /proc/self/status *)
        ("peak_rss_kb", num_int (Obs.Timing.peak_rss_kb ()));
        ("runs", Arr (List.map json_of_sample samples));
        ("all_exact_and_matching", num_int (if ok then 1 else 0));
      ]
  in
  (j, ok)

(* Schema check, mirroring bench/micro.ml: the structure `make ooc-smoke`
   asserts after every run.  Also semantic: every run must be exact,
   match the oracle, and have actually exceeded its hot budget. *)
let validate path =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "%s: invalid: %s\n" path msg;
        exit 1)
      fmt
  in
  let j =
    try Obs.Json.read_file path with Obs.Json.Parse_error m -> fail "%s" m
  in
  let obj = function Obj kvs -> kvs | _ -> fail "expected an object" in
  let field kvs k =
    match List.assoc_opt k kvs with
    | Some v -> v
    | None -> fail "missing field %S" k
  in
  let number kvs k =
    match field kvs k with Num f -> f | _ -> fail "field %S not a number" k
  in
  let top = obj j in
  (match field top "schema" with
  | Str s when s = schema_version -> ()
  | Str s -> fail "schema %S, want %S" s schema_version
  | _ -> fail "schema is not a string");
  (match field top "mode" with
  | Str ("full" | "smoke") -> ()
  | _ -> fail "mode must be \"full\" or \"smoke\"");
  (match List.assoc_opt "peak_rss_kb" top with
  | None -> ()
  | Some (Num f) when f >= 0.0 -> ()
  | Some _ -> fail "peak_rss_kb must be a non-negative number");
  let runs =
    match field top "runs" with
    | Arr (_ :: _ as xs) -> xs
    | Arr [] -> fail "runs is empty"
    | _ -> fail "runs is not an array"
  in
  List.iter
    (fun b ->
      let kvs = obj b in
      (match field kvs "name" with
      | Str _ -> ()
      | _ -> fail "run name is not a string");
      List.iter
        (fun k -> ignore (number kvs k))
        [
          "hot_node_budget"; "oracle_peak_nodes"; "oracle_states";
          "oracle_wall_s"; "ooc_wall_s"; "states"; "iterations"; "images";
          "migrations"; "peak_hot_nodes"; "peak_total_nodes";
          "peak_cold_nodes"; "spilled_bytes";
        ];
      if number kvs "exact" <> 1.0 then fail "run is not exact";
      if number kvs "reached_match" <> 1.0 then
        fail "run did not match the oracle";
      if number kvs "migrations" < 1.0 then fail "run never migrated";
      if number kvs "peak_cold_nodes" < 1.0 then
        fail "run never populated the cold tier";
      if number kvs "spilled_bytes" < 1.0 then fail "run never spilled bytes";
      (* the demonstration: the same exploration needs more nodes in RAM
         than the budget this run was held to *)
      if number kvs "oracle_peak_nodes" <= number kvs "hot_node_budget" then
        fail "hot budget is not below the in-RAM peak node count";
      if number kvs "states" <> number kvs "oracle_states" then
        fail "state counts disagree")
    runs;
  if number top "all_exact_and_matching" <> 1.0 then
    fail "all_exact_and_matching is not 1";
  Printf.printf "%s: valid %s report, %d run(s), all exact and matching\n"
    path schema_version (List.length runs)

(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false and out = ref "BENCH_ooc.json" and to_validate = ref [] in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "-o" :: path :: rest ->
        out := path;
        parse rest
    | "--validate" :: path :: rest ->
        to_validate := path :: !to_validate;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: ooc.exe [--smoke] [-o FILE] [--validate FILE]\n\
           unknown argument %s\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !to_validate with
  | _ :: _ as paths -> List.iter validate paths
  | [] ->
      let j, ok = report ~smoke:!smoke in
      Obs.Json.write_file !out j;
      Printf.printf "wrote %s\n" !out;
      if not ok then (
        Printf.eprintf
          "ooc: at least one run was inexact, stayed hot, or missed the \
           oracle\n";
        exit 1)
