(* Command-line client for a running serve_main instance.

     bdd_client.exe (--socket PATH | --port N) ping
     bdd_client.exe (--socket PATH | --port N) stats
     bdd_client.exe (--socket PATH | --port N) compile FILE
                    [--approx hb|sp|ua|rua --threshold N]
                    [--reach [--max-iter N]]

   `compile` uploads the BLIF file and prints the output handles; it can
   then under-approximate the first output (`--approx`) and/or run
   reachability on the compiled model (`--reach`).  One process = one
   server session; handles are not meaningful across invocations. *)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bdd_client: %s\n" msg;
      exit 1)
    fmt

let usage () =
  prerr_endline
    "usage: bdd_client (--socket PATH | --port N)\n\
    \       ping | stats | compile FILE [--approx hb|sp|ua|rua --threshold \
     N] [--reach [--max-iter N]]";
  exit 2

let meth_of_string s =
  match Approx.method_of_string s with
  | Some m -> m
  | None -> fail "unknown approximation method %s (want hb|sp|ua|rua|c1|c2)" s

let pp_cert = function
  | Serve.Proto.Exact -> "exact"
  | Serve.Proto.Degraded rungs -> "degraded:" ^ String.concat "," rungs

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error m -> fail "%s" m

let () =
  let bind = ref None
  and cmd = ref None
  and file = ref None
  and approx = ref None
  and threshold = ref 0
  and reach = ref false
  and max_iter = ref 0 in
  let rec scan = function
    | [] -> ()
    | "--socket" :: path :: rest ->
        bind := Some (Serve.Server.Unix_path path);
        scan rest
    | "--port" :: p :: rest ->
        (match int_of_string_opt p with
        | Some n when n >= 1 && n < 65536 -> bind := Some (Serve.Server.Tcp n)
        | _ -> fail "--port wants 1..65535, got %s" p);
        scan rest
    | "--approx" :: m :: rest ->
        approx := Some (meth_of_string m);
        scan rest
    | "--threshold" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 0 -> threshold := n
        | _ -> fail "--threshold wants a non-negative integer, got %s" n);
        scan rest
    | "--reach" :: rest ->
        reach := true;
        scan rest
    | "--max-iter" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> max_iter := n
        | _ -> fail "--max-iter wants a positive integer, got %s" n);
        scan rest
    | (("ping" | "stats") as c) :: rest when !cmd = None ->
        cmd := Some c;
        scan rest
    | "compile" :: path :: rest when !cmd = None ->
        cmd := Some "compile";
        file := Some path;
        scan rest
    | arg :: _ -> fail "unknown argument %s" arg
  in
  scan (List.tl (Array.to_list Sys.argv));
  let bind = match !bind with Some b -> b | None -> usage () in
  let cmd = match !cmd with Some c -> c | None -> usage () in
  let c =
    try Serve.Client.connect bind
    with Unix.Unix_error (e, _, _) ->
      fail "cannot connect: %s" (Unix.error_message e)
  in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      match cmd with
      | "ping" ->
          Serve.Client.ping c;
          print_endline "pong"
      | "stats" ->
          List.iter
            (fun (k, v) -> Printf.printf "%-28s %d\n" k v)
            (Serve.Client.stats c)
      | "compile" ->
          let path = match !file with Some p -> p | None -> usage () in
          let name = Filename.remove_extension (Filename.basename path) in
          let handles = Serve.Client.compile c ~name ~blif:(read_file path) in
          List.iter
            (fun (out, id, size) ->
              Printf.printf "%-24s handle=%d size=%d\n" out id size)
            handles;
          (match (!approx, handles) with
          | Some meth, (out, id, size) :: _ -> (
              match
                Serve.Client.call c
                  (Serve.Proto.Approx
                     { meth; threshold = !threshold; handle = id })
              with
              | Serve.Proto.Handle { id = aid; size = asize; cert } ->
                  Printf.printf
                    "approx %s(%s)            handle=%d size=%d (was %d) [%s]\n"
                    (Approx.method_name meth) out aid asize size (pp_cert cert)
              | Serve.Proto.Error m -> fail "approx: %s" m
              | _ -> fail "approx: unexpected reply")
          | Some _, [] -> fail "nothing to approximate: no outputs"
          | None, _ -> ());
          if !reach then
            (match
               Serve.Client.call c
                 (Serve.Proto.Reach { model = name; max_iter = !max_iter })
             with
            | Serve.Proto.Reach_done
                { states; iterations; images; reached; reached_size; cert } ->
                Printf.printf
                  "reach: states=%.0f iterations=%d images=%d handle=%d \
                   size=%d [%s]\n"
                  states iterations images reached reached_size (pp_cert cert)
            | Serve.Proto.Error m -> fail "reach: %s" m
            | _ -> fail "reach: unexpected reply")
      | _ -> usage ())
