(* Validator for the observability artifacts:

     obs_check.exe --trace FILE [--min-tracks N]
     obs_check.exe --metrics FILE [--prev FILE]

     obs_check.exe --serve-bench FILE

   --trace checks the file is Chrome trace-event JSON with balanced
   begin/end spans and nondecreasing timestamps on every track (and at
   least N tracks, i.e. worker domains, when --min-tracks is given).
   --metrics checks the obs-metrics/v1 schema; with --prev, also that
   every counter present in both snapshots is monotone.  --serve-bench
   checks a bdd-serve-bench/v1 load-generator report (schema tag, field
   presence, quantile monotonicity, zero wrong replies).  Exit 1 on the
   first failure — this is what `make trace-smoke` and `make serve-smoke`
   gate on. *)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "obs_check: %s\n" msg;
      exit 1)
    fmt

let load path =
  try Obs.Json.read_file path with
  | Obs.Json.Parse_error m -> fail "%s: %s" path m
  | Sys_error m -> fail "%s" m

let check_trace path min_tracks =
  match Obs.Trace.validate (load path) with
  | Error m -> fail "%s: %s" path m
  | Ok (events, tracks) ->
      if tracks < min_tracks then
        fail "%s: %d track(s), want at least %d" path tracks min_tracks;
      Printf.printf "%s: valid trace, %d events on %d track(s)\n" path events
        tracks

let check_metrics path prev =
  let j = load path in
  (match Obs.Metrics.validate j with
  | Error m -> fail "%s: %s" path m
  | Ok () -> ());
  let compared =
    match prev with
    | None -> ""
    | Some prev_path ->
        let old = Obs.Metrics.counters_of_json (load prev_path) in
        let now = Obs.Metrics.counters_of_json j in
        let n = ref 0 in
        List.iter
          (fun (name, v) ->
            match List.assoc_opt name now with
            | Some v' when v' < v ->
                fail "%s: counter %s went backwards (%.0f -> %.0f vs %s)"
                  path name v v' prev_path
            | Some _ -> incr n
            | None -> ())
          old;
        Printf.sprintf ", %d counter(s) monotone vs %s" !n prev_path
  in
  Printf.printf "%s: valid %s snapshot%s\n" path Obs.Metrics.schema_version
    compared;
  (* surface the resilience story of the run: supervised retries,
     quarantined jobs, degraded image steps, injected faults *)
  let resil =
    List.filter
      (fun (name, _) ->
        name = "mt.retries" || name = "mt.quarantined"
        || String.length name >= 6
           && String.sub name 0 6 = "resil.")
      (Obs.Metrics.counters_of_json j)
  in
  if resil <> [] then
    Printf.printf "%s: resilience %s\n" path
      (String.concat " "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%.0f" n v) resil));
  (* surface the serving story of the run: admission control and
     degradation on the wire *)
  let serve =
    List.filter
      (fun (name, _) ->
        String.length name >= 6 && String.sub name 0 6 = "serve.")
      (Obs.Metrics.counters_of_json j)
  in
  if serve <> [] then begin
    Printf.printf "%s: serve %s\n" path
      (String.concat " "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%.0f" n v) serve));
    (* impossibility rules over the robust-serving counters: each left
       count is a strict subset of the right one by construction, so a
       violation means a counter tore or the wiring regressed *)
    let all = Obs.Metrics.counters_of_json j in
    let v name =
      match List.assoc_opt name all with Some v -> v | None -> 0.0
    in
    let subset a b =
      if v a > v b then
        fail "%s: %s (%.0f) exceeds %s (%.0f)" path a (v a) b (v b)
    in
    (* a table-full rescue is one way to earn a Degraded certificate *)
    subset "serve.table_full_degraded" "serve.degraded_replies";
    (* every degraded/deduped reply is a reply to a counted request *)
    subset "serve.degraded_replies" "serve.replies";
    subset "serve.deduped" "serve.requests";
    (* a session rebuild happens only inside a quarantine, and each
       supervisor respawn quarantines at most one poisoned request *)
    subset "serve.rebuilt_sessions" "serve.quarantined";
    subset "serve.quarantined" "mt.service.respawned";
    (* attaching (resuming) a session needs an accepted connection *)
    subset "serve.resumed_sessions" "serve.accepted"
  end;
  (* surface the shared-arena story of the run: publishes, dedup hits,
     zero-copy attaches and reclamation — and reject impossible counter
     combinations (the documented Arena.stats invariants) *)
  let arena =
    List.filter
      (fun (name, _) ->
        String.length name >= 6 && String.sub name 0 6 = "arena.")
      (Obs.Metrics.counters_of_json j)
  in
  if arena <> [] then begin
    Printf.printf "%s: arena %s\n" path
      (String.concat " "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%.0f" n v) arena));
    let v name =
      match List.assoc_opt name arena with Some v -> v | None -> 0.0
    in
    (* dedup can only skip a segment creation, never invent one *)
    if v "arena.published" > v "arena.publishes" then
      fail "%s: arena.published (%.0f) exceeds arena.publishes (%.0f)" path
        (v "arena.published") (v "arena.publishes");
    (* only a published segment can be reclaimed, and only once *)
    if v "arena.reclaimed" > v "arena.published" then
      fail "%s: arena.reclaimed (%.0f) exceeds arena.published (%.0f)" path
        (v "arena.reclaimed") (v "arena.published");
    if v "arena.reclaimed_bytes" > v "arena.published_bytes" then
      fail "%s: arena.reclaimed_bytes (%.0f) exceeds arena.published_bytes (%.0f)"
        path
        (v "arena.reclaimed_bytes")
        (v "arena.published_bytes");
    (* the live-segment gauge is exactly the survivors *)
    match List.assoc_opt "arena.live_segments" (Obs.Metrics.gauges_of_json j) with
    | Some live when live <> v "arena.published" -. v "arena.reclaimed" ->
        fail
          "%s: arena.live_segments (%.0f) is not arena.published (%.0f) - \
           arena.reclaimed (%.0f)"
          path live
          (v "arena.published")
          (v "arena.reclaimed")
    | _ -> ()
  end;
  (* surface the out-of-core story of the run: tier migrations, streaming
     apply traffic, and the node-population split (hot unique table vs
     levelized cold tier vs spilled run files) *)
  let prefixed p (name, _) =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  let store_counters =
    List.filter
      (fun kv -> prefixed "store." kv || prefixed "reach.ooc." kv)
      (Obs.Metrics.counters_of_json j)
  in
  let store_gauges =
    List.filter
      (fun ((name, _) as kv) ->
        prefixed "store." kv
        || name = "bdd.stats.hot_nodes"
        || name = "bdd.stats.cold_nodes"
        || name = "bdd.stats.spilled_bytes")
      (Obs.Metrics.gauges_of_json j)
  in
  if store_counters <> [] || store_gauges <> [] then
    Printf.printf "%s: store %s\n" path
      (String.concat " "
         (List.map
            (fun (n, v) -> Printf.sprintf "%s=%.0f" n v)
            (store_counters @ store_gauges)));
  (* surface the parallel-kernel story of the run: shared-table
     contention and fork/steal traffic — and reject impossible
     combinations, which would mean the striped counters tore *)
  let par_kernel =
    List.filter
      (fun kv ->
        prefixed "kernel." kv || prefixed "mt.par_" kv)
      (Obs.Metrics.counters_of_json j)
  in
  if par_kernel <> [] then begin
    Printf.printf "%s: parallel-kernel %s\n" path
      (String.concat " "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%.0f" n v) par_kernel));
    let v name =
      match List.assoc_opt name par_kernel with Some v -> v | None -> 0.0
    in
    List.iter
      (fun (n, _) -> if v n < 0.0 then fail "%s: %s is negative" path n)
      par_kernel;
    (* a cache race is an insert that lost to a concurrent same-key
       insert, so races can never outnumber inserts... *)
    if v "kernel.cache_races" > v "kernel.cache_inserts" then
      fail "%s: kernel.cache_races (%.0f) exceeds kernel.cache_inserts (%.0f)"
        path
        (v "kernel.cache_races")
        (v "kernel.cache_inserts");
    (* ...a CAS retry is a stripe lock acquisition that found the node
       already published, and a stripe wait is a lock that blocked — both
       subsets of the lock acquisitions *)
    if v "kernel.cas_retries" > v "kernel.ut_locks" then
      fail "%s: kernel.cas_retries (%.0f) exceeds kernel.ut_locks (%.0f)" path
        (v "kernel.cas_retries") (v "kernel.ut_locks");
    if v "kernel.stripe_waits" > v "kernel.ut_locks" then
      fail "%s: kernel.stripe_waits (%.0f) exceeds kernel.ut_locks (%.0f)"
        path
        (v "kernel.stripe_waits")
        (v "kernel.ut_locks");
    (* ...and a chain fold is one mk call that landed on an existing
       chain node, so folds can never outnumber mk calls *)
    if v "kernel.chain_folds" > v "kernel.chain_mk" then
      fail "%s: kernel.chain_folds (%.0f) exceeds kernel.chain_mk (%.0f)"
        path
        (v "kernel.chain_folds")
        (v "kernel.chain_mk")
  end

(* BENCH_compress.json: per-mode node counts from bench/compress.exe.
   Checks the bdd-compress-bench/v1 schema, the bench-hygiene fields
   (mode and host_cpus recorded), per-row sanity, and the two hard
   per-instance invariants of chain reduction: a chain-reduced diagram
   never has more nodes than its plain counterpart. *)
let check_compress_bench path =
  let j = load path in
  let str name o =
    match Obs.Json.member name o with Some (Obs.Json.Str s) -> Some s | _ -> None
  in
  let num name o =
    match Option.bind (Obs.Json.member name o) Obs.Json.to_float with
    | Some v -> v
    | None -> fail "%s: missing numeric field %s" path name
  in
  (match str "schema" j with
  | Some "bdd-compress-bench/v1" -> ()
  | Some s -> fail "%s: schema %s, want bdd-compress-bench/v1" path s
  | None -> fail "%s: missing schema tag" path);
  let cpus = num "host_cpus" j in
  if cpus < 1.0 then fail "%s: host_cpus %.0f < 1" path cpus;
  let rows =
    match Obs.Json.member "rows" j with
    | Some (Obs.Json.Arr rows) when rows <> [] -> rows
    | Some (Obs.Json.Arr []) -> fail "%s: empty rows" path
    | _ -> fail "%s: missing rows array" path
  in
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun row ->
      let name =
        match str "name" row with
        | Some n -> n
        | None -> fail "%s: row without name" path
      in
      let mode =
        match str "mode" row with
        | Some ("bdd" | "zdd" | "cbdd" | "czdd") as m -> Option.get m
        | Some m -> fail "%s: %s: unknown mode %s" path name m
        | None -> fail "%s: %s: row without mode" path name
      in
      let nodes = num "nodes" row in
      if nodes < 1.0 then fail "%s: %s/%s: %.0f nodes" path name mode nodes;
      let folds = num "chain_folds" row and mk = num "chain_mk" row in
      if folds < 0.0 || mk < 0.0 || folds > mk then
        fail "%s: %s/%s: chain_folds %.0f vs chain_mk %.0f" path name mode
          folds mk;
      Hashtbl.replace by_key (name, mode) nodes)
    rows;
  let pairs = [ ("bdd", "cbdd"); ("zdd", "czdd") ] in
  Hashtbl.iter
    (fun (name, mode) nodes ->
      List.iter
        (fun (plain, chained) ->
          if mode = plain then
            match Hashtbl.find_opt by_key (name, chained) with
            | Some cn when cn > nodes ->
                fail "%s: %s: %s has %.0f nodes, more than %s's %.0f" path
                  name chained cn plain nodes
            | _ -> ())
        pairs)
    by_key;
  Printf.printf "%s: valid bdd-compress-bench/v1 report, %d row(s) on %.0f cpu(s)\n"
    path (List.length rows) cpus

let check_serve_bench path =
  match Serve.Report.validate_file path with
  | Error m -> fail "%s: %s" path m
  | Ok () -> (
      match Obs.Json.read_file path with
      | exception _ -> Printf.printf "%s: valid %s report\n" path Serve.Report.schema
      | j ->
          let f name =
            match Option.bind (Obs.Json.member name j) Obs.Json.to_float with
            | Some v -> v
            | None -> 0.0
          in
          Printf.printf
            "%s: valid %s report — %.0f requests on %.0f connection(s), \
             %.0f rps, p50/p95/p99 = %.0f/%.0f/%.0f us, rejected=%.0f \
             degraded=%.0f errors=%.0f\n"
            path Serve.Report.schema (f "requests") (f "connections")
            (f "throughput_rps") (f "p50_us") (f "p95_us") (f "p99_us")
            (f "rejected") (f "degraded") (f "errors");
          (match Obs.Json.member "soak" j with
          | None -> ()
          | Some s ->
              let sf name =
                match Option.bind (Obs.Json.member name s) Obs.Json.to_float with
                | Some v -> v
                | None -> 0.0
              in
              (* validate_file already enforced server_exits = 0 and
                 slo_met; this line is the human-readable verdict *)
              Printf.printf
                "%s: soak %.0fs at %.0f rps — churns=%.0f retries=%.0f \
                 reconnects=%.0f server_exits=%.0f slo_p99=%.1fms met\n"
                path (sf "duration_s") (sf "arrival_rate") (sf "churns")
                (sf "retries") (sf "reconnects") (sf "server_exits")
                (sf "slo_p99_ms")))

let () =
  let trace = ref None
  and metrics = ref None
  and serve_bench = ref None
  and compress_bench = ref None
  and prev = ref None
  and min_tracks = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--trace" :: path :: rest ->
        trace := Some path;
        parse rest
    | "--metrics" :: path :: rest ->
        metrics := Some path;
        parse rest
    | "--serve-bench" :: path :: rest ->
        serve_bench := Some path;
        parse rest
    | "--compress-bench" :: path :: rest ->
        compress_bench := Some path;
        parse rest
    | "--prev" :: path :: rest ->
        prev := Some path;
        parse rest
    | "--min-tracks" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            min_tracks := n;
            parse rest
        | _ -> fail "--min-tracks wants a positive integer, got %s" n)
    | arg :: _ ->
        fail
          "usage: obs_check [--trace FILE [--min-tracks N]] [--metrics FILE \
           [--prev FILE]] [--serve-bench FILE] [--compress-bench FILE] \
           (unknown argument %s)"
          arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  if
    !trace = None && !metrics = None && !serve_bench = None
    && !compress_bench = None
  then
    fail
      "nothing to do: pass --trace, --metrics, --serve-bench and/or \
       --compress-bench";
  Option.iter (fun path -> check_trace path !min_tracks) !trace;
  Option.iter (fun path -> check_metrics path !prev) !metrics;
  Option.iter check_serve_bench !serve_bench;
  Option.iter check_compress_bench !compress_bench
