(* The BDD service daemon.

     serve_main.exe --socket PATH | --port N
                    [--workers N] [--queue-depth N] [--par-jobs N]
                    [--frontend poll|threaded] [--arena]
                    [--request-node-budget N] [--request-deadline SECS]
                    [--max-sessions N] [--io-timeout SECS]
                    [--hang-timeout SECS] [--session-linger SECS]
                    [--table-capacity N] [--session-spool DIR]
                    [--hang-worker-after SECS]
                    [--metrics FILE] [--trace FILE] [--faults SPEC]

   Serves until SIGTERM/SIGINT, then drains gracefully: stops accepting,
   answers everything queued, joins the workers, and only then writes the
   observability artifacts and exits 0.  `--faults` arms Resil.Fault
   injection process-wide (including the wire probes) — the chaos
   contract is that injected crashes surface as Error replies or
   Degraded certificates, never as a server exit.  `--hang-worker-after`
   wedges one worker domain mid-run so soak tests can watch the
   supervisor (`--hang-timeout`) quarantine and respawn it.

   A leftover socket file from a crashed predecessor is probed and swept
   (Serve.Server.start); the SIGINT/at_exit handlers sweep it and any
   in-flight checkpoint temp files on the way out, like reach_main does
   for its artifacts. *)

let usage () =
  prerr_endline
    "usage: serve_main (--socket PATH | --port N) [--workers N]\n\
    \       [--queue-depth N] [--par-jobs N] [--frontend poll|threaded]\n\
    \       [--arena] [--request-node-budget N]\n\
    \       [--request-deadline SECS] [--max-sessions N]\n\
    \       [--io-timeout SECS] [--hang-timeout SECS]\n\
    \       [--session-linger SECS] [--table-capacity N]\n\
    \       [--session-spool DIR] [--hang-worker-after SECS]\n\
    \       [--metrics FILE] [--trace FILE] [--faults SPEC]";
  exit 2

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "serve_main: %s\n" msg;
      exit 2)
    fmt

let pos_int flag s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | _ -> fail "%s wants a positive integer, got %s" flag s

let pos_float flag s =
  match float_of_string_opt s with
  | Some d when d > 0.0 -> d
  | _ -> fail "%s wants positive seconds, got %s" flag s

let () =
  let bind = ref None
  and workers = ref Serve.Server.default_config.workers
  and queue_depth = ref Serve.Server.default_config.queue_depth
  and node_budget = ref None
  and deadline = ref None
  and max_sessions = ref Serve.Server.default_config.max_sessions
  and par_jobs = ref Serve.Server.default_config.par_jobs
  and frontend = ref Serve.Server.default_config.frontend
  and arena = ref false
  and io_timeout = ref (Some 30.0)
  and hang_timeout = ref None
  and session_linger = ref Serve.Server.default_config.session_linger
  and table_capacity = ref None
  and session_spool = ref None
  and hang_worker_after = ref None
  and metrics = ref None
  and trace = ref None
  and faults = ref None in
  let rec parse = function
    | [] -> ()
    | "--socket" :: path :: rest ->
        bind := Some (Serve.Server.Unix_path path);
        parse rest
    | "--port" :: p :: rest ->
        (match int_of_string_opt p with
        | Some n when n >= 0 && n < 65536 -> bind := Some (Serve.Server.Tcp n)
        | _ -> fail "--port wants 0..65535, got %s" p);
        parse rest
    | "--workers" :: n :: rest ->
        workers := pos_int "--workers" n;
        parse rest
    | "--queue-depth" :: n :: rest ->
        queue_depth := pos_int "--queue-depth" n;
        parse rest
    | "--request-node-budget" :: n :: rest ->
        node_budget := Some (pos_int "--request-node-budget" n);
        parse rest
    | "--request-deadline" :: s :: rest ->
        deadline := Some (pos_float "--request-deadline" s);
        parse rest
    | "--max-sessions" :: n :: rest ->
        max_sessions := pos_int "--max-sessions" n;
        parse rest
    | "--par-jobs" :: n :: rest ->
        par_jobs := pos_int "--par-jobs" n;
        parse rest
    | "--frontend" :: f :: rest ->
        (match f with
        | "poll" -> frontend := Serve.Server.Poll
        | "threaded" -> frontend := Serve.Server.Threaded
        | _ -> fail "--frontend wants poll or threaded, got %s" f);
        parse rest
    | "--arena" :: rest ->
        arena := true;
        parse rest
    | "--io-timeout" :: s :: rest ->
        (* 0 disables: blocking IO, the pre-PR 9 behavior *)
        (match float_of_string_opt s with
        | Some d when d = 0.0 -> io_timeout := None
        | Some d when d > 0.0 -> io_timeout := Some d
        | _ -> fail "--io-timeout wants seconds (0 disables), got %s" s);
        parse rest
    | "--hang-timeout" :: s :: rest ->
        hang_timeout := Some (pos_float "--hang-timeout" s);
        parse rest
    | "--session-linger" :: s :: rest ->
        session_linger := pos_float "--session-linger" s;
        parse rest
    | "--table-capacity" :: n :: rest ->
        table_capacity := Some (pos_int "--table-capacity" n);
        parse rest
    | "--session-spool" :: dir :: rest ->
        session_spool := Some dir;
        parse rest
    | "--hang-worker-after" :: s :: rest ->
        hang_worker_after := Some (pos_float "--hang-worker-after" s);
        parse rest
    | "--metrics" :: path :: rest ->
        metrics := Some path;
        parse rest
    | "--trace" :: path :: rest ->
        trace := Some path;
        parse rest
    | "--faults" :: spec :: rest ->
        (match Resil.Fault.config_of_string spec with
        | Ok cfg -> faults := Some cfg
        | Error m -> fail "--faults: %s" m);
        parse rest
    | arg :: _ ->
        Printf.eprintf "serve_main: unknown argument %s\n" arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let bind = match !bind with Some b -> b | None -> usage () in
  (match !session_spool with
  | Some dir when not (Sys.file_exists dir && Sys.is_directory dir) ->
      fail "--session-spool: %s is not a directory" dir
  | _ -> ());
  (* the shard workers and the parallel kernel both want cores; warn when
     either — or their combination — oversubscribes the host *)
  ignore (Mt.Par.warn_oversubscribed ~flag:"--workers" !workers);
  if !par_jobs > 1 then begin
    ignore (Mt.Par.warn_oversubscribed ~flag:"--par-jobs" !par_jobs);
    if !workers * !par_jobs > Mt.Par.recommended () then
      Printf.eprintf
        "warning: --workers %d x --par-jobs %d may oversubscribe the %d \
         core(s) available\n\
         %!"
        !workers !par_jobs
        (Mt.Par.recommended ())
  end;
  Resil.Fault.arm !faults;
  if !metrics <> None then Obs.Metrics.set_recording true;
  Option.iter (fun out -> Obs.Trace.start ~out ()) !trace;
  let stop_flag = Atomic.make false in
  let on_signal _ = Atomic.set stop_flag true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (* sweep our on-disk footprint on any exit path: the socket file (run
     normally unlinks it, but a crash or signal between bind and drain
     must not leave a stale socket) and any in-flight checkpoint temp
     files from session-journal spooling — the reach_main discipline *)
  let cleanup () =
    ignore (Resil.Checkpoint.cleanup_pending ());
    match bind with
    | Serve.Server.Unix_path path -> (
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Serve.Server.Tcp _ -> ()
  in
  at_exit cleanup;
  let cfg =
    {
      Serve.Server.bind;
      frontend = !frontend;
      arena = !arena;
      workers = !workers;
      queue_depth = !queue_depth;
      limits =
        { Serve.Handler.node_budget = !node_budget; deadline = !deadline };
      max_sessions = !max_sessions;
      on_dispatch = None;
      par_jobs = !par_jobs;
      io_timeout = !io_timeout;
      hang_timeout = !hang_timeout;
      session_linger = !session_linger;
      table_capacity = !table_capacity;
      session_spool = !session_spool;
    }
  in
  let server = Serve.Server.start cfg in
  (match Serve.Server.address server with
  | Unix.ADDR_UNIX path -> Printf.printf "serve_main: listening on %s\n%!" path
  | Unix.ADDR_INET (_, port) ->
      Printf.printf "serve_main: listening on 127.0.0.1:%d\n%!" port);
  (* chaos: wedge worker 0 after the given delay, from a side thread so
     the main serve loop is untouched.  The hang is bounded (3x the hang
     timeout, or 5s) so unsupervised runs still drain. *)
  Option.iter
    (fun after ->
      ignore
        (Thread.create
           (fun () ->
             Thread.delay after;
             if not (Atomic.get stop_flag) then begin
               let seconds =
                 match !hang_timeout with
                 | Some h -> Float.max 1.0 (3.0 *. h)
                 | None -> 5.0
               in
               let ok =
                 Serve.Server.inject_worker_hang server ~shard:0 ~seconds
               in
               Printf.printf "serve_main: chaos worker hang injected=%b\n%!" ok
             end)
           ()))
    !hang_worker_after;
  Serve.Server.run server ~stop:(fun () -> Atomic.get stop_flag);
  Option.iter (fun path -> Obs.Metrics.write Obs.Metrics.default path) !metrics;
  if !trace <> None then Obs.Trace.stop ();
  Printf.printf
    "serve_main: drained (accepted=%d requests=%d batches=%d rejected=%d \
     degraded=%d errors=%d io_timeouts=%d deduped=%d respawns=%d \
     quarantined=%d rebuilt=%d faults_injected=%d)\n\
     %!"
    (Serve.Server.accepted server)
    (Serve.Server.requests server)
    (Serve.Server.batches server)
    (Serve.Server.rejected server)
    (Serve.Server.degraded_replies server)
    (Serve.Server.errors server)
    (Serve.Server.io_timeouts server)
    (Serve.Server.deduped server)
    (Serve.Server.respawns server)
    (Serve.Server.quarantined server)
    (Serve.Server.rebuilt_sessions server)
    (Resil.Fault.injected ());
  Option.iter
    (fun a ->
      let v k = try List.assoc k (Arena.stats a) with Not_found -> 0 in
      Printf.printf
        "serve_main: arena (published=%d hits=%d attaches=%d live_segments=%d \
         reclaimed=%d)\n\
         %!"
        (v "arena.published") (v "arena.hits") (v "arena.attaches")
        (Arena.live_segments a) (v "arena.reclaimed"))
    (Serve.Server.arena server)
