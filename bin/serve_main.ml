(* The BDD service daemon.

     serve_main.exe --socket PATH | --port N
                    [--workers N] [--queue-depth N] [--par-jobs N]
                    [--request-node-budget N] [--request-deadline SECS]
                    [--max-sessions N]
                    [--metrics FILE] [--trace FILE] [--faults SPEC]

   Serves until SIGTERM/SIGINT, then drains gracefully: stops accepting,
   answers everything queued, joins the workers, and only then writes the
   observability artifacts and exits 0.  `--faults` arms Resil.Fault
   injection process-wide — the chaos contract is that injected crashes
   surface as Error replies or Degraded certificates, never as a server
   exit. *)

let usage () =
  prerr_endline
    "usage: serve_main (--socket PATH | --port N) [--workers N]\n\
    \       [--queue-depth N] [--par-jobs N] [--request-node-budget N]\n\
    \       [--request-deadline SECS] [--max-sessions N]\n\
    \       [--metrics FILE] [--trace FILE] [--faults SPEC]";
  exit 2

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "serve_main: %s\n" msg;
      exit 2)
    fmt

let pos_int flag s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | _ -> fail "%s wants a positive integer, got %s" flag s

let () =
  let bind = ref None
  and workers = ref Serve.Server.default_config.workers
  and queue_depth = ref Serve.Server.default_config.queue_depth
  and node_budget = ref None
  and deadline = ref None
  and max_sessions = ref Serve.Server.default_config.max_sessions
  and par_jobs = ref Serve.Server.default_config.par_jobs
  and metrics = ref None
  and trace = ref None
  and faults = ref None in
  let rec parse = function
    | [] -> ()
    | "--socket" :: path :: rest ->
        bind := Some (Serve.Server.Unix_path path);
        parse rest
    | "--port" :: p :: rest ->
        (match int_of_string_opt p with
        | Some n when n >= 0 && n < 65536 -> bind := Some (Serve.Server.Tcp n)
        | _ -> fail "--port wants 0..65535, got %s" p);
        parse rest
    | "--workers" :: n :: rest ->
        workers := pos_int "--workers" n;
        parse rest
    | "--queue-depth" :: n :: rest ->
        queue_depth := pos_int "--queue-depth" n;
        parse rest
    | "--request-node-budget" :: n :: rest ->
        node_budget := Some (pos_int "--request-node-budget" n);
        parse rest
    | "--request-deadline" :: s :: rest ->
        (match float_of_string_opt s with
        | Some d when d > 0.0 -> deadline := Some d
        | _ -> fail "--request-deadline wants positive seconds, got %s" s);
        parse rest
    | "--max-sessions" :: n :: rest ->
        max_sessions := pos_int "--max-sessions" n;
        parse rest
    | "--par-jobs" :: n :: rest ->
        par_jobs := pos_int "--par-jobs" n;
        parse rest
    | "--metrics" :: path :: rest ->
        metrics := Some path;
        parse rest
    | "--trace" :: path :: rest ->
        trace := Some path;
        parse rest
    | "--faults" :: spec :: rest ->
        (match Resil.Fault.config_of_string spec with
        | Ok cfg -> faults := Some cfg
        | Error m -> fail "--faults: %s" m);
        parse rest
    | arg :: _ ->
        Printf.eprintf "serve_main: unknown argument %s\n" arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let bind = match !bind with Some b -> b | None -> usage () in
  (* the shard workers and the parallel kernel both want cores; warn when
     either — or their combination — oversubscribes the host *)
  ignore (Mt.Par.warn_oversubscribed ~flag:"--workers" !workers);
  if !par_jobs > 1 then begin
    ignore (Mt.Par.warn_oversubscribed ~flag:"--par-jobs" !par_jobs);
    if !workers * !par_jobs > Mt.Par.recommended () then
      Printf.eprintf
        "warning: --workers %d x --par-jobs %d may oversubscribe the %d \
         core(s) available\n\
         %!"
        !workers !par_jobs
        (Mt.Par.recommended ())
  end;
  Resil.Fault.arm !faults;
  if !metrics <> None then Obs.Metrics.set_recording true;
  Option.iter (fun out -> Obs.Trace.start ~out ()) !trace;
  let stop_flag = Atomic.make false in
  let on_signal _ = Atomic.set stop_flag true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let cfg =
    {
      Serve.Server.bind;
      workers = !workers;
      queue_depth = !queue_depth;
      limits =
        { Serve.Handler.node_budget = !node_budget; deadline = !deadline };
      max_sessions = !max_sessions;
      on_dispatch = None;
      par_jobs = !par_jobs;
    }
  in
  let server = Serve.Server.start cfg in
  (match Serve.Server.address server with
  | Unix.ADDR_UNIX path -> Printf.printf "serve_main: listening on %s\n%!" path
  | Unix.ADDR_INET (_, port) ->
      Printf.printf "serve_main: listening on 127.0.0.1:%d\n%!" port);
  Serve.Server.run server ~stop:(fun () -> Atomic.get stop_flag);
  Option.iter (fun path -> Obs.Metrics.write Obs.Metrics.default path) !metrics;
  if !trace <> None then Obs.Trace.stop ();
  Printf.printf
    "serve_main: drained (accepted=%d requests=%d rejected=%d degraded=%d \
     errors=%d faults_injected=%d)\n\
     %!"
    (Serve.Server.accepted server)
    (Serve.Server.requests server)
    (Serve.Server.rejected server)
    (Serve.Server.degraded_replies server)
    (Serve.Server.errors server)
    (Resil.Fault.injected ())
