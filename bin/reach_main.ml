(* Reachability analysis CLI.

     dune exec bin/reach_main.exe -- --circuit microprogram --engine hd \
       --method RUA --threshold 0 --quality 1.0 --pimg 20000,5000

   Circuits are either built-in generators (--circuit name, with --param
   key=value settings) or BLIF files (--blif path). *)

let builtin name params =
  let p key default =
    match List.assoc_opt key params with Some v -> v | None -> default
  in
  match name with
  | "counter" -> Generate.counter ~bits:(p "bits" 8)
  | "counter_en" -> Generate.counter_enabled ~bits:(p "bits" 8)
  | "ring" -> Generate.ring ~bits:(p "bits" 8)
  | "johnson" -> Generate.johnson ~bits:(p "bits" 8)
  | "lfsr" -> Generate.lfsr ~bits:(p "bits" 8)
  | "fifo" -> Generate.fifo_controller ~depth:(p "depth" 8)
  | "arbiter" -> Generate.arbiter ~clients:(p "clients" 4)
  | "traffic" -> Generate.traffic_light ()
  | "microsequencer" ->
      Generate.microsequencer ~addr_bits:(p "addr" 4)
        ~stack_depth:(p "stack" 2)
  | "microprogram" ->
      Generate.microprogram ~addr_bits:(p "addr" 5) ~stack_depth:(p "stack" 3)
        ~seed:(p "seed" 3)
  | "shifter" -> Generate.shifter_datapath ~width:(p "width" 8)
  | "handshake" -> Generate.handshake_pipeline ~stages:(p "stages" 8)
  | "dense" ->
      Generate.dense_controller ~latches:(p "latches" 24) ~seed:(p "seed" 11)
  | other -> failwith (Printf.sprintf "unknown circuit %s" other)

open Cmdliner

let circuit_arg =
  Arg.(
    value
    & opt string "microsequencer"
    & info [ "circuit"; "c" ] ~docv:"NAME"
        ~doc:
          "Built-in circuit generator: counter, counter_en, ring, johnson, \
           lfsr, fifo, arbiter, traffic, microsequencer, microprogram, \
           shifter, handshake, dense.")

let blif_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "blif" ] ~docv:"FILE" ~doc:"Load the circuit from a BLIF file.")

let params_arg =
  Arg.(
    value & opt_all (pair ~sep:'=' string int) []
    & info [ "param"; "p" ] ~docv:"KEY=INT"
        ~doc:"Generator parameter, e.g. --param addr=4 --param stack=2.")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("bfs", `Bfs); ("hd", `Hd) ]) `Hd
    & info [ "engine"; "e" ] ~doc:"Traversal engine: bfs or hd.")

let method_arg =
  Arg.(
    value & opt string "RUA"
    & info [ "method"; "m" ] ~doc:"Subset method for hd: HB, SP, UA, RUA, C1, C2.")

let threshold_arg =
  Arg.(value & opt int 0 & info [ "threshold"; "t" ] ~doc:"Subset size target.")

let quality_arg =
  Arg.(value & opt float 1.0 & info [ "quality"; "q" ] ~doc:"RUA quality factor.")

let pimg_arg =
  Arg.(
    value
    & opt (some (pair ~sep:',' int int)) None
    & info [ "pimg" ] ~docv:"LIMIT,TH"
        ~doc:"Partial-image subsetting: trigger node limit and threshold.")

let time_limit_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-limit" ] ~docv:"SECONDS" ~doc:"Abort after this CPU time.")

let node_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"NODES"
        ~doc:"Abort when the live-node count exceeds this budget.")

let sift_arg =
  Arg.(value & flag & info [ "sift" ] ~doc:"Enable dynamic reordering.")

let cluster_arg =
  Arg.(
    value & opt int 2000
    & info [ "cluster-limit" ] ~doc:"Transition-relation cluster size limit.")

let save_reached_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-reached" ] ~docv:"FILE"
        ~doc:
          "Checkpoint the reached set to $(docv) (compact binary BDD \
           serialization, loadable into any manager).")

let check_reached_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "check-reached" ] ~docv:"FILE"
        ~doc:
          "Load a reached set saved by --save-reached (possibly from a run \
           with a different variable order) and report whether this run \
           computed the same set.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Periodically checkpoint the traversal to $(docv) (checksummed, \
           written atomically); resume with --resume after a crash.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 1
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Checkpoint every $(docv) iterations (with --checkpoint).")

let resume_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume the traversal from a checkpoint written by --checkpoint \
           (same circuit and engine settings).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Arm seeded fault injection (chaos testing), e.g. \
           'seed=42,node_limit=0.001,cache_wipe=0.001'.  Equivalent to the \
           RESIL_FAULTS environment variable.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the traversal to $(docv) (Chrome \
           trace-event JSON; open in Perfetto or chrome://tracing).")

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for the out-of-core tiered store's cold and spill \
           files (with --hot-node-budget; default: a fresh temp directory \
           removed on exit).")

let hot_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hot-node-budget" ] ~docv:"NODES"
        ~doc:
          "Run the out-of-core engine: keep at most $(docv) nodes in the \
           in-RAM unique table and migrate the reached set to an mmap'd \
           cold tier on disk when the budget is hit.  The traversal stays \
           exact across migrations.  Overrides --engine.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run image computation on $(docv) domains sharing one manager \
           (lock-free unique table + parallel relational products).  \
           Results are bit-identical to --jobs 1.  Values above the \
           host's core count are accepted but warned about.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write an obs-metrics/v1 snapshot (traversal counters, kernel \
           gauges and histograms) to $(docv) when the run finishes.")

let dd_mode_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dd-mode" ] ~docv:"MODE"
        ~doc:
          "Also report the reached set's size in a compressed \
           representation: $(docv) is bdd, zdd, cbdd, czdd or all.  The \
           set is converted semantically (lib/dd), round-trip verified, \
           and the conversion's chain-fold counters feed the \
           bdd.stats.chain_* keys of --metrics.")

(* Partial spill / checkpoint temp files must not outlive an interrupted
   run: both registries drain idempotently, so wiring them into the
   signal handlers AND at_exit is safe. *)
let cleanup_temps () =
  let n = Resil.Checkpoint.cleanup_pending () + Store.Tiered.cleanup_files () in
  if n > 0 then Printf.eprintf "removed %d leftover temp file(s)\n%!" n

let install_cleanup () =
  let handler signal_exit_code =
    Sys.Signal_handle
      (fun _ ->
        cleanup_temps ();
        exit signal_exit_code)
  in
  (try Sys.set_signal Sys.sigint (handler 130) with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (handler 143) with Invalid_argument _ -> ());
  at_exit cleanup_temps

let run circuit blif params engine meth threshold quality pimg time_limit
    node_limit sift cluster_limit save_reached check_reached ckpt ckpt_every
    resume_path faults store_dir hot_budget trace jobs metrics dd_mode =
  install_cleanup ();
  let jobs = max 1 jobs in
  ignore (Mt.Par.warn_oversubscribed ~flag:"--jobs" jobs);
  Option.iter (fun path -> Obs.Trace.start ~out:path ()) trace;
  if metrics <> None then Obs.Metrics.set_recording true;
  (match faults with
  | None -> ()
  | Some spec -> (
      match Resil.Fault.config_of_string spec with
      | Ok c -> Resil.Fault.arm (Some c)
      | Error m -> failwith ("--faults: " ^ m)));
  let c =
    match blif with
    | Some path -> Blif.parse_file path
    | None -> builtin circuit params
  in
  Printf.printf "circuit: %s\n%!" (Circuit.stats c);
  (* --jobs > 1 needs a domain-safe manager; the striped table costs
     nothing measurable at 1 job but keep the historical private layout
     there anyway so single-job runs are byte-for-byte the old binary *)
  let man = Bdd.create ~shared:(jobs > 1) () in
  let trans = Trans.build ~cluster_limit (Compile.compile ~man c) in
  if Obs.Kernel.observing () then Obs.Kernel.attach (Trans.man trans);
  if Resil.Fault.enabled () then Resil.Fault.attach (Trans.man trans);
  let checkpoint =
    Option.map
      (fun path -> { Resil.Checkpoint.path; every = max 1 ckpt_every })
      ckpt
  in
  let resume = Option.map Resil.Checkpoint.load_reach resume_path in
  (match resume with
  | Some st ->
      Printf.printf "resuming from iteration %d (%d images)\n%!"
        st.Resil.Checkpoint.iterations st.Resil.Checkpoint.images
  | None -> ());
  (* the out-of-core engine drives its own streaming store; the pool only
     feeds the in-RAM traversal engines *)
  let with_pool fn =
    if jobs > 1 then Mt.Par.with_pool ~jobs (fun p -> fn (Some (Mt.Par.pool p)))
    else fn None
  in
  let result =
    Obs.Trace.with_span "reach" @@ fun () ->
    match (hot_budget, engine) with
    | Some budget, _ ->
        `Ooc (Ooc.run ?time_limit ?store_dir ~hot_budget:budget trans)
    | None, `Bfs ->
        with_pool @@ fun pool ->
        `Trav
          (Bfs.run ?time_limit ?node_limit ~sift ?checkpoint ?resume ?pool
             trans)
    | None, `Hd ->
        let meth =
          match Approx.method_of_string meth with
          | Some m -> m
          | None -> failwith ("unknown method " ^ meth)
        in
        with_pool @@ fun pool ->
        `Trav
          (High_density.run ?time_limit ?node_limit ~sift ?checkpoint ?resume
             ~params:{ High_density.meth; threshold; quality; pimg }
             ?pool trans)
  in
  let man = Trans.man trans in
  let reached =
    match result with
    | `Trav r ->
        Format.printf "%a@." Traversal.pp r;
        r.Traversal.reached
    | `Ooc r ->
        Format.printf "%a@." Ooc.pp r;
        Bdd.import man r.Ooc.reached
  in
  (match dd_mode with
  | None -> ()
  | Some spec ->
      let modes =
        if spec = "all" then Dd.all_modes
        else
          match Dd.mode_of_string spec with
          | Some m -> [ m ]
          | None -> failwith ("--dd-mode: unknown mode " ^ spec)
      in
      let plain = Bdd.size reached in
      (* accumulate chain counters across the converted modes and expose
         them through the kernel's stats hook, so a --metrics snapshot of
         this run carries bdd.stats.chain_folds / chain_mk *)
      let folds_total = ref 0 and mk_total = ref 0 in
      Bdd.set_chain_stats man (Some (fun () -> (!folds_total, !mk_total)));
      List.iter
        (fun mode ->
          let dman = Dd.create ~nvars:(Bdd.nvars man) ~mode () in
          let u = Dd.of_bdd dman man reached in
          if not (Bdd.equal (Dd.to_bdd dman man u) reached) then
            failwith
              (Printf.sprintf "--dd-mode %s: round trip diverged"
                 (Dd.mode_name mode));
          let folds, mk = Dd.chain_counters dman in
          folds_total := !folds_total + folds;
          mk_total := !mk_total + mk;
          let n = Dd.size u in
          Printf.printf
            "reached as %-4s: %d nodes (plain bdd %d, %.2fx)\n%!"
            (Dd.mode_name mode) n plain
            (float_of_int plain /. float_of_int (max n 1)))
        modes);
  Obs.Trace.stop ();
  Option.iter (fun path -> Printf.eprintf "trace -> %s\n%!" path) trace;
  Option.iter
    (fun path ->
      (* "bdd.stats" rather than "bdd": the kernel observer already owns
         bdd.ut_grows etc. as counters, and a gauge may not share a name *)
      Obs.Metrics.record_stats Obs.Metrics.default ~prefix:"bdd.stats"
        (Bdd.stats man);
      Obs.Metrics.write Obs.Metrics.default path;
      Printf.eprintf "metrics -> %s\n%!" path)
    metrics;
  (match save_reached with
  | None -> ()
  | Some path ->
      (* atomic + checksummed: a crash mid-write can no longer leave a
         truncated file under the target name *)
      Resil.Checkpoint.save path (Bdd.export man reached);
      Printf.printf "reached set (%d nodes) saved to %s\n%!" (Bdd.size reached)
        path);
  match check_reached with
  | None -> ()
  | Some path ->
      let previous = Bdd.import man (Resil.Checkpoint.load path) in
      if Bdd.equal previous reached then
        Printf.printf "check-reached: %s matches this run\n%!" path
      else begin
        Printf.printf "check-reached: %s DIFFERS from this run\n%!" path;
        exit 2
      end

let cmd =
  let term =
    Term.(
      const run $ circuit_arg $ blif_arg $ params_arg $ engine_arg $ method_arg
      $ threshold_arg $ quality_arg $ pimg_arg $ time_limit_arg
      $ node_limit_arg $ sift_arg $ cluster_arg $ save_reached_arg
      $ check_reached_arg $ checkpoint_arg $ checkpoint_every_arg
      $ resume_arg $ faults_arg $ store_dir_arg $ hot_budget_arg $ trace_arg
      $ jobs_arg $ metrics_arg $ dd_mode_arg)
  in
  Cmd.v
    (Cmd.info "reach_main"
       ~doc:"Symbolic reachability analysis with BDD approximations (DAC'98)")
    term

let () = exit (Cmd.eval cmd)
