#!/usr/bin/env bash
# SLO-asserted soak smoke of the robust serve stack (make soak-smoke).
#
# One server with every robustness feature on — socket IO timeouts, a
# worker supervisor, a bounded node table, session-journal spooling —
# under seeded kernel faults, plus a deliberately wedged worker domain
# mid-run (--hang-worker-after).  Against it, the open-loop soak load
# generator: scheduled arrivals, connection churn over durable keyed
# sessions, per-request deadlines, client-side wire faults (torn,
# corrupted, stalled frames) from the same seed family, and a p99 SLO.
#
# The assertions, in order of importance:
#   1. the server never exits under fault load (loadgen probes it after
#      the soak; SIGTERM afterwards must still drain to exit 0);
#   2. every reply is Exact, Degraded or a typed Error — zero oracle
#      contradictions (loadgen exits 1 on any `wrong`);
#   3. p99 latency holds the SLO (generous here: this is a smoke, not a
#      benchmark — the bar is "no collapse", not "fast");
#   4. the drain summary shows the supervisor actually fired (respawns
#      >= 1) so the soak exercised quarantine, not just happy paths;
#   5. BENCH_serve_soak.json and the metrics snapshot validate, including
#      the soak section and the serve.* impossibility rules.
#
# Artifacts live under _build/smoke/ (removed by dune clean).

set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=_build/smoke
SERVE=_build/default/bin/serve_main.exe
LOADGEN=_build/default/bench/loadgen.exe
OBS_CHECK=_build/default/bin/obs_check.exe

SOAK_SECS=${SOAK_SECS:-6}

mkdir -p "$SMOKE" "$SMOKE/soak_spool"
rm -f "$SMOKE"/soak*.sock "$SMOKE"/soak_*.json "$SMOKE"/soak_spool/*

wait_for_socket() {
    local sock=$1
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && return 0
        sleep 0.1
    done
    echo "soak_smoke: server never bound $sock" >&2
    return 1
}

echo "== soak: ${SOAK_SECS}s open-loop under wire+kernel faults, worker wedged mid-run =="
"$SERVE" --socket "$SMOKE/soak.sock" --workers 2 --queue-depth 64 \
    --io-timeout 2 --hang-timeout 0.5 --hang-worker-after 2 \
    --session-linger 15 --table-capacity 200000 \
    --session-spool "$SMOKE/soak_spool" \
    --metrics "$SMOKE/soak_metrics.json" \
    --faults 'seed=7,node_limit=0.01,cache_wipe=0.01,abort=0.005' \
    > "$SMOKE/soak_server.log" 2>&1 &
SERVER_PID=$!
wait_for_socket "$SMOKE/soak.sock"

"$LOADGEN" --socket "$SMOKE/soak.sock" --connections 4 \
    --soak "$SOAK_SECS" --arrival-rate 250 --churn 40 \
    --deadline-ms 500 --slo-p99-ms 2000 --seed 7 --expect-faults \
    --faults 'seed=7,wire_cut=0.01,wire_flip=0.01,wire_stall=0.005,wire_delay=0.01' \
    -o BENCH_serve_soak.json

# SIGTERM after the soak must still drain gracefully (exit 0)
kill -TERM "$SERVER_PID"
status=0
wait "$SERVER_PID" || status=$?
if [ "$status" -ne 0 ]; then
    echo "soak_smoke: server exited $status on SIGTERM (want 0)" >&2
    exit 1
fi
cat "$SMOKE/soak_server.log"

# the wedged worker must have been caught: no respawn means the soak
# never exercised the supervisor and proves nothing
RESPAWNS=$(sed -n 's/.*respawns=\([0-9]*\).*/\1/p' "$SMOKE/soak_server.log")
if [ -z "$RESPAWNS" ] || [ "$RESPAWNS" -eq 0 ]; then
    echo "soak_smoke: supervisor never respawned the wedged worker" >&2
    exit 1
fi

"$OBS_CHECK" --serve-bench BENCH_serve_soak.json \
    --metrics "$SMOKE/soak_metrics.json"

echo "soak_smoke: OK (respawns=$RESPAWNS, SLO held, server survived)"
