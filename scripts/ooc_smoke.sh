#!/usr/bin/env bash
# End-to-end smoke test of the out-of-core tiered store (make ooc-smoke).
#
# Phase 1 — oracle: an unrestricted in-RAM BFS reach run over johnson8
# saves its reached set (checksummed, atomic).
#
# Phase 2 — out-of-core: the same circuit under --hot-node-budget 160,
# far below the ~445-node in-RAM peak, with the cold tier hosted in a
# visible --store-dir.  The run must migrate at least once, stay Exact
# (no "(INCOMPLETE)" marker), agree with the oracle bit-for-bit
# (--check-reached exits 2 on mismatch), and leave no cold/spill files
# behind after the store is closed.  Its obs-metrics snapshot must
# validate and carry the store.* counters.
#
# Phase 3 — report: bench/ooc.exe --smoke writes a bdd-ooc-bench/v1
# report (oracle vs out-of-core on two circuits) which must pass its own
# schema + semantics validator.
#
# All artifacts live under _build/smoke/ (removed by dune clean).  The
# binaries are invoked directly from _build/default so nothing contends
# for the dune build lock.

set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=_build/smoke
REACH=_build/default/bin/reach_main.exe
OOC=_build/default/bench/ooc.exe
OBS_CHECK=_build/default/bin/obs_check.exe

mkdir -p "$SMOKE"
rm -rf "$SMOKE"/ooc_store
rm -f "$SMOKE"/ooc_oracle.bdd "$SMOKE"/ooc_metrics.json "$SMOKE"/BENCH_ooc.json
mkdir -p "$SMOKE"/ooc_store

echo "== ooc_smoke: phase 1 (in-RAM oracle) =="
"$REACH" --circuit johnson --param bits=8 --engine bfs \
    --save-reached "$SMOKE"/ooc_oracle.bdd

echo "== ooc_smoke: phase 2 (out-of-core under a 160-node hot budget) =="
out=$("$REACH" --circuit johnson --param bits=8 --engine bfs \
    --hot-node-budget 160 --store-dir "$SMOKE"/ooc_store \
    --check-reached "$SMOKE"/ooc_oracle.bdd \
    --metrics "$SMOKE"/ooc_metrics.json)
echo "$out"
case "$out" in
    *INCOMPLETE*)
        echo "ooc_smoke: run was not exact" >&2; exit 1 ;;
esac
case "$out" in
    *migrations=0*)
        echo "ooc_smoke: run never migrated to the cold tier" >&2; exit 1 ;;
esac
case "$out" in
    *"matches this run"*) ;;
    *)
        echo "ooc_smoke: reached set was not checked against the oracle" >&2
        exit 1 ;;
esac
leftovers=$(find "$SMOKE"/ooc_store -type f | wc -l)
if [ "$leftovers" -ne 0 ]; then
    echo "ooc_smoke: $leftovers file(s) left in the store dir:" >&2
    find "$SMOKE"/ooc_store -type f >&2
    exit 1
fi
"$OBS_CHECK" --metrics "$SMOKE"/ooc_metrics.json | tee /dev/stderr \
    | grep -q "store" \
    || { echo "ooc_smoke: metrics carry no store section" >&2; exit 1; }

echo "== ooc_smoke: phase 3 (bdd-ooc-bench/v1 report) =="
"$OOC" --smoke -o "$SMOKE"/BENCH_ooc.json
"$OOC" --validate "$SMOKE"/BENCH_ooc.json

echo "ooc_smoke: OK"
