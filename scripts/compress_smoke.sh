#!/usr/bin/env bash
# End-to-end smoke test of the compressed decision-diagram subsystem
# (make compress-smoke).
#
# Phase 1 — bench: bench/compress.exe --smoke builds the chain-heavy
# generator family plus the parity-spread mirror in all four modes
# (bdd/zdd/cbdd/czdd), with every instance round-trip verified against
# the plain-BDD kernel and its minterm oracle.  The run itself asserts
# the acceptance gate: CBDD and CZDD at least halve the generator
# family's plain-BDD node counts.
#
# Phase 2 — validate: obs_check --compress-bench checks the emitted
# bdd-compress-bench/v1 report — schema tag, host_cpus, per-row fields,
# and the structural invariants (chained representation never larger
# than its plain counterpart, chain folds never exceeding mk calls).
#
# Phase 3 — reach: a reach run with --dd-mode all converts its reached
# set into every mode, each conversion round-trip verified in-process,
# and the metrics snapshot must carry the bdd.stats.chain_* keys fed by
# the conversion's chain counters.
#
# All artifacts live under _build/smoke/ (removed by dune clean).  The
# binaries are invoked directly from _build/default so nothing contends
# for the dune build lock.

set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=_build/smoke
COMPRESS=_build/default/bench/compress.exe
OBS_CHECK=_build/default/bin/obs_check.exe
REACH=_build/default/bin/reach_main.exe

mkdir -p "$SMOKE"
rm -f "$SMOKE"/BENCH_compress_smoke.json "$SMOKE"/compress_metrics.json

echo "== compress_smoke: phase 1 (four-mode bench + reduction gate) =="
"$COMPRESS" --smoke -o "$SMOKE"/BENCH_compress_smoke.json

echo "== compress_smoke: phase 2 (bdd-compress-bench/v1 validation) =="
"$OBS_CHECK" --compress-bench "$SMOKE"/BENCH_compress_smoke.json

echo "== compress_smoke: phase 3 (reach --dd-mode all) =="
out=$("$REACH" --circuit johnson --param bits=8 --engine bfs \
    --dd-mode all --metrics "$SMOKE"/compress_metrics.json)
echo "$out"
for mode in bdd zdd cbdd czdd; do
    case "$out" in
        *"reached as $mode"*) ;;
        *)
            echo "compress_smoke: no $mode row in the reach output" >&2
            exit 1 ;;
    esac
done
"$OBS_CHECK" --metrics "$SMOKE"/compress_metrics.json | tee /dev/stderr \
    | grep -q "metrics" \
    || { echo "compress_smoke: metrics snapshot invalid" >&2; exit 1; }
grep -q "bdd.stats.chain_mk" "$SMOKE"/compress_metrics.json \
    || { echo "compress_smoke: metrics carry no chain counters" >&2; exit 1; }

echo "compress_smoke: OK"
