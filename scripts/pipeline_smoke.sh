#!/usr/bin/env bash
# End-to-end smoke of the shared arena + pipelined wire (make pipeline-smoke).
#
# Phase 1 — pipelined benchmark against an arena-backed server: a
# 4-worker poll-frontend server with --arena, hit by the closed-loop
# load generator at --pipeline-depth 8 (4 connections x 250 requests,
# every reply oracle-checked at batch-build time; the loadgen preflight
# first asserts pipelined reply frames are byte-identical to
# unpipelined ones).  Assertions:
#   1. zero oracle contradictions (loadgen exits 1 on any `wrong`);
#   2. the server really saw batch frames (drain summary batches > 0);
#   3. the compiled circuit was shared, not re-imported: each connection
#      issues one Compile of the same benchmark circuit, and the drain
#      summary must show exactly one publish set with hits > 0 (every
#      later Compile resolved from the arena catalog zero-copy);
#   4. the bdd-serve-bench/v1 report validates and records the
#      pipeline depth and a positive arena share;
#   5. the metrics snapshot validates, including the arena.*
#      impossibility rules (obs_check);
#   6. SIGTERM still drains cleanly (exit 0).
#
# Phase 2 — one wire-fault seed against the poll event loop: a short
# open-loop soak whose client-side wire probes tear, corrupt and stall
# frames mid-send (same fault family as soak_smoke, fresh seed).  The
# poll front end must shed the mangled frames as typed errors or
# connection closes — never an accept-loop stall or a server exit — and
# the retrying client must keep its oracle discipline (zero wrong).
# Pipelining is deliberately off here: a torn batch frame kills one
# connection, and the retrying client that survives that is the soak
# client, which speaks singletons.
#
# Artifacts live under _build/smoke/ (removed by dune clean).

set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=_build/smoke
SERVE=_build/default/bin/serve_main.exe
LOADGEN=_build/default/bench/loadgen.exe
OBS_CHECK=_build/default/bin/obs_check.exe

mkdir -p "$SMOKE"
rm -f "$SMOKE"/pipeline*.sock "$SMOKE"/pipeline_*.json "$SMOKE"/pipeline_*.log

wait_for_socket() {
    local sock=$1
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && return 0
        sleep 0.1
    done
    echo "pipeline_smoke: server never bound $sock" >&2
    return 1
}

terminate() {
    # SIGTERM must produce a graceful drain and exit status 0
    local pid=$1 name=$2
    kill -TERM "$pid"
    local status=0
    wait "$pid" || status=$?
    if [ "$status" -ne 0 ]; then
        echo "pipeline_smoke: $name exited $status on SIGTERM (want 0)" >&2
        exit 1
    fi
}

summary_field() {
    # pull field=N out of a drain-summary log line
    sed -n "s/.*[ (]$2=\([0-9]*\).*/\1/p" "$1" | head -n 1
}

echo "== phase 1: pipelined closed loop over a shared arena =="
"$SERVE" --socket "$SMOKE/pipeline.sock" --arena --workers 4 \
    --queue-depth 64 --metrics "$SMOKE/pipeline_metrics.json" \
    > "$SMOKE/pipeline_phase1.log" 2>&1 &
SERVER_PID=$!
wait_for_socket "$SMOKE/pipeline.sock"

"$LOADGEN" --socket "$SMOKE/pipeline.sock" --smoke --seed 5 \
    --pipeline-depth 8 -o "$SMOKE/pipeline_bench.json"

terminate "$SERVER_PID" "server"
cat "$SMOKE/pipeline_phase1.log"

BATCHES=$(summary_field "$SMOKE/pipeline_phase1.log" batches)
if [ -z "$BATCHES" ] || [ "$BATCHES" -eq 0 ]; then
    echo "pipeline_smoke: server saw no batch frames" >&2
    exit 1
fi

# sharing, not re-importing: one publish set for the benchmark circuit,
# every other connection's Compile a catalog hit
ARENA_LINE=$(grep 'serve_main: arena' "$SMOKE/pipeline_phase1.log" | head -n 1)
PUBLISHED=$(printf '%s\n' "$ARENA_LINE" | sed -n 's/.*[ (]published=\([0-9]*\).*/\1/p')
HITS=$(printf '%s\n' "$ARENA_LINE" | sed -n 's/.*[ (]hits=\([0-9]*\).*/\1/p')
if [ -z "$PUBLISHED" ] || [ -z "$HITS" ]; then
    echo "pipeline_smoke: no arena summary in the drain line" >&2
    exit 1
fi
if [ "$PUBLISHED" -ne 1 ] || [ "$HITS" -eq 0 ]; then
    echo "pipeline_smoke: expected 1 publish with hits > 0," \
        "got published=$PUBLISHED hits=$HITS (circuit was re-imported?)" >&2
    exit 1
fi

"$OBS_CHECK" --serve-bench "$SMOKE/pipeline_bench.json" \
    --metrics "$SMOKE/pipeline_metrics.json"

# the report must carry the depth it ran at and a positive arena share
if ! grep -q '"pipeline_depth": *8' "$SMOKE/pipeline_bench.json"; then
    echo "pipeline_smoke: report does not record pipeline_depth=8" >&2
    exit 1
fi
if ! grep -q '"arena_share": *0*\.[0-9]*[1-9]' "$SMOKE/pipeline_bench.json"; then
    echo "pipeline_smoke: report has no positive arena_share" >&2
    exit 1
fi

echo "== phase 2: wire-fault seed against the poll front end =="
"$SERVE" --socket "$SMOKE/pipeline_chaos.sock" --arena --workers 2 \
    --queue-depth 64 --io-timeout 2 \
    > "$SMOKE/pipeline_phase2.log" 2>&1 &
CHAOS_PID=$!
wait_for_socket "$SMOKE/pipeline_chaos.sock"

"$LOADGEN" --socket "$SMOKE/pipeline_chaos.sock" --connections 4 \
    --soak "${PIPELINE_FAULT_SECS:-3}" --arrival-rate 250 \
    --seed 23 --expect-faults \
    --faults 'seed=23,wire_cut=0.01,wire_flip=0.01,wire_stall=0.005,wire_delay=0.01' \
    -o "$SMOKE/pipeline_fault.json" | tee "$SMOKE/pipeline_fault.log"

terminate "$CHAOS_PID" "chaos server"
cat "$SMOKE/pipeline_phase2.log"

# the fault phase is pointless if no wire fault actually bit: the
# retrying client counts every re-send and re-dial it was forced into
RETRIES=$(sed -n 's/.*retries=\([0-9]*\).*/\1/p' "$SMOKE/pipeline_fault.log")
RECONNECTS=$(sed -n 's/.*reconnects=\([0-9]*\).*/\1/p' "$SMOKE/pipeline_fault.log")
if [ "$((${RETRIES:-0} + ${RECONNECTS:-0}))" -eq 0 ]; then
    echo "pipeline_smoke: wire-fault phase forced no retries or reconnects" >&2
    exit 1
fi

echo "pipeline_smoke: OK (batches=$BATCHES, published=$PUBLISHED," \
    "hits=$HITS, server survived $RETRIES retries / $RECONNECTS reconnects)"
