#!/usr/bin/env bash
# End-to-end smoke test of the serve layer (make serve-smoke).
#
# Phase 1 — normal operation: a 4-worker server on a Unix socket, pinged,
# then hit by the closed-loop load generator (4 connections x 250
# requests, every reply checked against an in-process oracle).  The
# BENCH_serve.json report and the serve.* metrics snapshot are both
# structurally validated, and the server must drain cleanly on SIGTERM
# (exit 0).
#
# Phase 2 — chaos: the same server with seeded fault injection armed and a
# per-request node budget.  Injected crashes must surface as Error
# replies or Degraded certificates, never as a server exit: the loadgen
# (--expect-faults) still requires zero wrong replies, the drain summary
# must show faults were actually injected, and SIGTERM must still exit 0.
#
# All artifacts live under _build/smoke/ (removed by dune clean).  The
# binaries are invoked directly from _build/default so the backgrounded
# server never contends for the dune build lock.

set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=_build/smoke
SERVE=_build/default/bin/serve_main.exe
CLIENT=_build/default/bin/bdd_client.exe
LOADGEN=_build/default/bench/loadgen.exe
OBS_CHECK=_build/default/bin/obs_check.exe

mkdir -p "$SMOKE"
rm -f "$SMOKE"/serve*.sock "$SMOKE"/serve_*.json

wait_for_socket() {
    local sock=$1
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && return 0
        sleep 0.1
    done
    echo "serve_smoke: server never bound $sock" >&2
    return 1
}

terminate() {
    # SIGTERM must produce a graceful drain and exit status 0
    local pid=$1 name=$2
    kill -TERM "$pid"
    local status=0
    wait "$pid" || status=$?
    if [ "$status" -ne 0 ]; then
        echo "serve_smoke: $name exited $status on SIGTERM (want 0)" >&2
        exit 1
    fi
}

echo "== phase 1: normal operation =="
"$SERVE" --socket "$SMOKE/serve.sock" --workers 4 --queue-depth 64 \
    --metrics "$SMOKE/serve_metrics.json" --trace "$SMOKE/serve_trace.json" \
    > "$SMOKE/serve_phase1.log" 2>&1 &
SERVER_PID=$!
wait_for_socket "$SMOKE/serve.sock"

"$CLIENT" --socket "$SMOKE/serve.sock" ping
"$LOADGEN" --socket "$SMOKE/serve.sock" --smoke --seed 7 -o BENCH_serve.json
"$CLIENT" --socket "$SMOKE/serve.sock" stats > "$SMOKE/serve_stats.txt"

terminate "$SERVER_PID" "server"
cat "$SMOKE/serve_phase1.log"

"$OBS_CHECK" --serve-bench BENCH_serve.json
"$OBS_CHECK" --metrics "$SMOKE/serve_metrics.json" \
    --trace "$SMOKE/serve_trace.json" --min-tracks 4

echo "== phase 2: chaos (seeded fault injection) =="
"$SERVE" --socket "$SMOKE/serve_chaos.sock" --workers 4 --queue-depth 64 \
    --request-node-budget 2000 \
    --faults 'seed=11,node_limit=0.01,cache_wipe=0.01,abort=0.005,job_crash=0.02' \
    > "$SMOKE/serve_phase2.log" 2>&1 &
CHAOS_PID=$!
wait_for_socket "$SMOKE/serve_chaos.sock"

"$LOADGEN" --socket "$SMOKE/serve_chaos.sock" --smoke --seed 13 --expect-faults

terminate "$CHAOS_PID" "chaos server"
cat "$SMOKE/serve_phase2.log"

# the chaos run is pointless if nothing was injected: the seeded config
# above reliably fires with these loadgen seeds
INJECTED=$(sed -n 's/.*faults_injected=\([0-9]*\).*/\1/p' "$SMOKE/serve_phase2.log")
if [ -z "$INJECTED" ] || [ "$INJECTED" -eq 0 ]; then
    echo "serve_smoke: chaos phase injected no faults" >&2
    exit 1
fi

echo "serve_smoke: OK (chaos injected $INJECTED faults, server survived)"
