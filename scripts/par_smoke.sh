#!/usr/bin/env bash
# End-to-end smoke test of the parallel shared-memory kernel
# (make par-smoke).
#
# Phase 1 — test matrix: the par, kernel and mt alcotest suites re-run
# with PAR_TEST_DOMAINS="1 D" for D in 2 and 8, so the qcheck
# par-vs-oracle bit-identity property and the shared-manager stress test
# exercise both a modest and an oversubscribed domain count.  (On a
# 1-core host every D > 1 oversubscribes; the point is correctness under
# preemption, which oversubscription makes more likely, not speedup.)
#
# Phase 2 — engine round trip: a sequential BFS reach run saves its
# reached set, then a --jobs 2 run on a shared manager must compute the
# same set bit for bit (--check-reached exits 2 on mismatch).  Its
# metrics snapshot must validate and pass obs_check's parallel-kernel
# impossibility checks (kernel.* counters present and consistent).
#
# All artifacts live under _build/smoke/ (removed by dune clean).  The
# binaries are invoked directly from _build/default so nothing contends
# for the dune build lock.

set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=_build/smoke
TEST=_build/default/test/test_main.exe
REACH=_build/default/bin/reach_main.exe
OBS_CHECK=_build/default/bin/obs_check.exe

mkdir -p "$SMOKE"
rm -f "$SMOKE"/par_oracle.bdd "$SMOKE"/par_metrics.json

for D in 2 8; do
    echo "== par_smoke: phase 1 (test suites at $D domains) =="
    PAR_TEST_DOMAINS="1 $D" "$TEST" test par -q
    PAR_TEST_DOMAINS="1 $D" "$TEST" test kernel -q
    PAR_TEST_DOMAINS="1 $D" "$TEST" test mt -q
done

echo "== par_smoke: phase 2 (sequential vs --jobs 2 round trip) =="
"$REACH" --circuit microsequencer --param addr=3 --param stack=2 \
    --engine bfs --jobs 1 --save-reached "$SMOKE"/par_oracle.bdd
"$REACH" --circuit microsequencer --param addr=3 --param stack=2 \
    --engine bfs --jobs 2 --check-reached "$SMOKE"/par_oracle.bdd \
    --metrics "$SMOKE"/par_metrics.json
"$OBS_CHECK" --metrics "$SMOKE"/par_metrics.json | tee /dev/stderr \
    | grep -q "parallel-kernel" \
    || { echo "par_smoke: metrics carry no parallel-kernel section" >&2; exit 1; }

echo "par_smoke: OK"
