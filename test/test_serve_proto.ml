(* The serve wire protocol: every request and reply round-trips through
   encode/decode, and no corruption — truncation or a single flipped bit
   anywhere in a frame — ever decodes into a message: it must raise
   Bad_frame (the protocol never turns a damaged frame into a wrong
   reply). *)

let qtest ?(count = 200) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

(* --- generators -------------------------------------------------------- *)

open QCheck.Gen

let small = int_bound 1_000_000
let tiny_str = string_size ~gen:printable (int_bound 40)
let bytes_str = string_size (int_bound 60)
let vars = list_size (int_bound 4) (int_bound 64)

let gen_op =
  oneof
    [
      map (fun a -> Serve.Proto.Not a) small;
      map2 (fun a b -> Serve.Proto.And (a, b)) small small;
      map2 (fun a b -> Serve.Proto.Or (a, b)) small small;
      map2 (fun a b -> Serve.Proto.Xor (a, b)) small small;
      map3 (fun a b c -> Serve.Proto.Ite (a, b, c)) small small small;
      map2 (fun vs a -> Serve.Proto.Exists (vs, a)) vars small;
      map2 (fun vs a -> Serve.Proto.Forall (vs, a)) vars small;
    ]

let gen_meth =
  oneofl [ Approx.HB; Approx.SP; Approx.UA; Approx.RUA; Approx.C1; Approx.C2 ]

let gen_request =
  oneof
    [
      return Serve.Proto.Ping;
      map2 (fun var phase -> Serve.Proto.Lit { var; phase }) (int_bound 200) bool;
      map (fun bdd -> Serve.Proto.Put { bdd }) bytes_str;
      map (fun handle -> Serve.Proto.Fetch { handle }) small;
      map (fun op -> Serve.Proto.Apply op) gen_op;
      map2 (fun name blif -> Serve.Proto.Compile { name; blif }) tiny_str bytes_str;
      map3
        (fun meth threshold handle ->
          Serve.Proto.Approx { meth; threshold; handle })
        gen_meth small small;
      map2
        (fun handle disjunctive -> Serve.Proto.Decomp { handle; disjunctive })
        small bool;
      map2 (fun model max_iter -> Serve.Proto.Reach { model; max_iter }) tiny_str
        small;
      map2 (fun handle nvars -> Serve.Proto.Count { handle; nvars }) small
        (int_bound 200);
      map (fun handle -> Serve.Proto.Sat { handle }) small;
      map (fun handles -> Serve.Proto.Free { handles })
        (list_size (int_bound 6) small);
      return Serve.Proto.Stats;
      map (fun key -> Serve.Proto.Attach { key }) tiny_str;
    ]

let gen_meta =
  map2
    (fun deadline_ms token -> { Serve.Proto.deadline_ms; token })
    (int_bound 100_000) small

let gen_cert =
  oneof
    [
      return Serve.Proto.Exact;
      map
        (fun rungs -> Serve.Proto.Degraded rungs)
        (list_size (int_bound 3) tiny_str);
    ]

(* finite doubles that survive an exact f64 round-trip *)
let gen_states = map (fun n -> float_of_int n *. 0.5) (int_bound 1_000_000)

let gen_reply =
  oneof
    [
      return Serve.Proto.Pong;
      map3
        (fun id size cert -> Serve.Proto.Handle { id; size; cert })
        small small gen_cert;
      map (fun bdd -> Serve.Proto.Bdd_payload { bdd }) bytes_str;
      map
        (fun hs -> Serve.Proto.Handles hs)
        (list_size (int_bound 4) (triple tiny_str small small));
      map3
        (fun (g, g_size) (h, h_size) shared ->
          Serve.Proto.Pair { g; g_size; h; h_size; shared })
        (pair small small) (pair small small) small;
      map3
        (fun (states, iterations) (images, reached) (reached_size, cert) ->
          Serve.Proto.Reach_done
            { states; iterations; images; reached; reached_size; cert })
        (pair gen_states small) (pair small small) (pair small gen_cert);
      map (fun n -> Serve.Proto.Count_is n) gen_states;
      map
        (fun asg -> Serve.Proto.Sat_is asg)
        (option (list_size (int_bound 6) (pair (int_bound 64) bool)));
      map
        (fun kvs -> Serve.Proto.Stats_are kvs)
        (list_size (int_bound 6) (pair tiny_str (map (fun n -> n - 500_000) small)));
      map (fun n -> Serve.Proto.Freed n) small;
      map (fun m -> Serve.Proto.Error m) tiny_str;
      return Serve.Proto.Overloaded;
      map3
        (fun session resumed handles ->
          Serve.Proto.Attached { session; resumed; handles })
        small bool small;
    ]

let arb_request =
  QCheck.make ~print:(Format.asprintf "%a" Serve.Proto.pp_request) gen_request

let arb_reply =
  QCheck.make ~print:(Format.asprintf "%a" Serve.Proto.pp_reply) gen_reply

let arb_meta_request =
  QCheck.make
    ~print:(fun (m, r) ->
      Format.asprintf "deadline_ms=%d token=%d %a" m.Serve.Proto.deadline_ms
        m.Serve.Proto.token Serve.Proto.pp_request r)
    (pair gen_meta gen_request)

(* --- round trips ------------------------------------------------------- *)

let prop_request_round_trip =
  qtest ~count:1000 "decode_request (encode_request r) = r" arb_request
    (fun r -> Serve.Proto.decode_request (Serve.Proto.encode_request r) = r)

let prop_reply_round_trip =
  qtest ~count:1000 "decode_reply (encode_reply r) = r" arb_reply (fun r ->
      Serve.Proto.decode_reply (Serve.Proto.encode_reply r) = r)

(* request metadata (deadline, idempotency token) rides in an additive
   envelope: it must round-trip exactly, and its absence must leave the
   frame byte-identical to the pre-metadata encoding (wire compat) *)
let prop_meta_round_trip =
  qtest ~count:1000 "decode_request_meta (encode_request ~meta r) = (meta, r)"
    arb_meta_request (fun (meta, r) ->
      Serve.Proto.decode_request_meta (Serve.Proto.encode_request ~meta r)
      = (meta, r))

let prop_plain_frames_carry_no_meta =
  qtest ~count:500 "a plain request frame decodes with no_meta and is
    byte-identical to encode_request ~meta:no_meta" arb_request (fun r ->
      let plain = Serve.Proto.encode_request r in
      Serve.Proto.decode_request_meta plain = (Serve.Proto.no_meta, r)
      && Serve.Proto.encode_request ~meta:Serve.Proto.no_meta r = plain)

(* --- corruption -------------------------------------------------------- *)

let rejects decode frame =
  match decode frame with
  | (_ : 'a) -> false
  | exception Serve.Proto.Bad_frame _ -> true

let truncations decode frame =
  (* every proper prefix must be rejected *)
  let ok = ref true in
  for len = 0 to String.length frame - 1 do
    if not (rejects decode (String.sub frame 0 len)) then ok := false
  done;
  !ok

let bit_flips decode frame =
  (* flipping any single bit anywhere must be rejected *)
  let ok = ref true in
  for byte = 0 to String.length frame - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string frame in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      if not (rejects decode (Bytes.to_string b)) then ok := false
    done
  done;
  !ok

let prop_request_truncation =
  qtest ~count:300 "any truncated request frame raises Bad_frame" arb_request
    (fun r -> truncations Serve.Proto.decode_request (Serve.Proto.encode_request r))

let prop_reply_truncation =
  qtest ~count:300 "any truncated reply frame raises Bad_frame" arb_reply
    (fun r -> truncations Serve.Proto.decode_reply (Serve.Proto.encode_reply r))

let prop_request_bit_flip =
  qtest ~count:100 "any single bit flip in a request frame raises Bad_frame"
    arb_request (fun r ->
      bit_flips Serve.Proto.decode_request (Serve.Proto.encode_request r))

let prop_meta_frame_corruption =
  qtest ~count:100 "meta-wrapped frames reject truncation and bit flips too"
    arb_meta_request (fun (meta, r) ->
      let frame = Serve.Proto.encode_request ~meta r in
      truncations Serve.Proto.decode_request_meta frame
      && bit_flips Serve.Proto.decode_request_meta frame)

let prop_reply_bit_flip =
  qtest ~count:100 "any single bit flip in a reply frame raises Bad_frame"
    arb_reply (fun r ->
      bit_flips Serve.Proto.decode_reply (Serve.Proto.encode_reply r))

(* --- batch frames (pipelining) ----------------------------------------- *)

let gen_batch = list_size (int_range 1 6) (pair gen_meta gen_request)

let arb_batch =
  QCheck.make
    ~print:(fun items ->
      String.concat "; "
        (List.map
           (fun (m, r) ->
             Format.asprintf "tok=%d %a" m.Serve.Proto.token
               Serve.Proto.pp_request r)
           items))
    gen_batch

let prop_batch_round_trip =
  qtest ~count:500 "decode_envelope (encode_batch items) = Batch items"
    arb_batch (fun items ->
      Serve.Proto.decode_envelope (Serve.Proto.encode_batch items)
      = Serve.Proto.Batch items)

(* old client, new server: a singleton frame — plain or meta-wrapped —
   decodes through the envelope path exactly as decode_request_meta
   would, so pre-batch clients are served unchanged *)
let prop_singleton_frames_decode_as_single =
  qtest ~count:500 "decode_envelope on a singleton frame = Single"
    arb_meta_request (fun (meta, r) ->
      Serve.Proto.decode_envelope (Serve.Proto.encode_request ~meta r)
      = Serve.Proto.Single (meta, r)
      && Serve.Proto.decode_envelope (Serve.Proto.encode_request r)
         = Serve.Proto.Single (Serve.Proto.no_meta, r))

(* new client, old server: a pre-batch decoder must reject a batch frame
   as a clean protocol error (unknown opcode), never misparse it into
   some other request *)
let prop_old_server_rejects_batch =
  qtest ~count:300 "decode_request_meta raises Bad_frame on a batch frame"
    arb_batch (fun items ->
      let frame = Serve.Proto.encode_batch items in
      rejects Serve.Proto.decode_request_meta frame
      && rejects Serve.Proto.decode_request frame)

let prop_batch_corruption =
  qtest ~count:60 "batch frames reject truncation and bit flips"
    arb_batch (fun items ->
      let frame = Serve.Proto.encode_batch items in
      truncations Serve.Proto.decode_envelope frame
      && bit_flips Serve.Proto.decode_envelope frame)

let test_empty_batch_rejected () =
  match Serve.Proto.encode_batch [] with
  | (_ : string) -> Alcotest.fail "empty batch encoded"
  | exception Invalid_argument _ -> ()

(* frame_size is the event-loop reader's incremental framing: on any
   prefix it either waits (None), answers the exact frame length, or
   raises on a header that can never resync *)
let prop_frame_size_incremental =
  qtest ~count:300 "frame_size: None under 9 bytes, exact length after"
    arb_batch (fun items ->
      let frame = Serve.Proto.encode_batch items in
      let n = String.length frame in
      let ok = ref true in
      for len = 0 to n do
        let prefix = String.sub frame 0 len in
        match Serve.Proto.frame_size prefix with
        | None -> if len >= 9 then ok := false
        | Some sz -> if len < 9 || sz <> n then ok := false
        | exception Serve.Proto.Bad_frame _ -> ok := false
      done;
      !ok)

(* cross-decoding: a request frame is not a reply (opcode spaces differ by
   construction only through the CRC'd tag byte — decode must not confuse
   them silently into nonsense; it may succeed only by producing an
   equal-tagged message, so check a Ping frame specifically) *)
let test_empty_and_garbage () =
  Alcotest.(check bool) "empty string rejected" true
    (rejects Serve.Proto.decode_request "");
  Alcotest.(check bool) "garbage rejected" true
    (rejects Serve.Proto.decode_request (String.make 64 '\xAB'));
  Alcotest.(check bool) "bad magic rejected" true
    (rejects Serve.Proto.decode_request
       ("XSV1" ^ String.sub (Serve.Proto.encode_request Serve.Proto.Ping) 4 9))

let test_oversized_length_rejected () =
  (* a frame announcing a body beyond max_frame must be rejected before
     anything trusts the length *)
  let frame = Serve.Proto.encode_request Serve.Proto.Ping in
  let b = Bytes.of_string frame in
  Bytes.set_int32_le b 5 (Int32.of_int (Serve.Proto.max_frame + 1));
  Alcotest.(check bool) "oversized length rejected" true
    (rejects Serve.Proto.decode_request (Bytes.to_string b))

let tests =
  ( "serve-proto",
    [
      prop_request_round_trip;
      prop_reply_round_trip;
      prop_meta_round_trip;
      prop_plain_frames_carry_no_meta;
      prop_request_truncation;
      prop_reply_truncation;
      prop_request_bit_flip;
      prop_reply_bit_flip;
      prop_meta_frame_corruption;
      prop_batch_round_trip;
      prop_singleton_frames_decode_as_single;
      prop_old_server_rejects_batch;
      prop_batch_corruption;
      prop_frame_size_incremental;
      Alcotest.test_case "an empty batch cannot be encoded" `Quick
        test_empty_batch_rejected;
      Alcotest.test_case "empty/garbage/bad-magic frames" `Quick
        test_empty_and_garbage;
      Alcotest.test_case "oversized announced length" `Quick
        test_oversized_length_rejected;
    ] )
