(* The observability subsystem: metrics registry exactness under domains,
   obs-metrics/v1 snapshots, the span tracer's file format, the kernel
   event observer, and the instrumented Mt runner. *)

let test_jobs = 4

let with_recording f =
  Obs.Metrics.set_recording true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_recording false) f

let in_tmp name f =
  let path = Filename.temp_file "obs_test_" name in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* --- Json ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Obs.Json.(
      Obj
        [
          ("s", Str "a\"b\\c\nd");
          ("n", Num 1.5);
          ("i", num_int 42);
          ("b", Bool true);
          ("a", Arr [ Num 0.; Obj []; Arr [] ]);
        ])
  in
  Alcotest.(check bool)
    "parse (to_string j) = j" true
    (Obs.Json.parse (Obs.Json.to_string j) = j)

(* --- Metrics ------------------------------------------------------- *)

let test_counter_parallel_exact () =
  (* four domains hammer one counter; striped cells must not lose a single
     increment even when domain ids collide on a stripe *)
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "par.count" in
  let per_domain = 100_000 in
  let work () =
    for _ = 1 to per_domain do
      Obs.Metrics.inc c 1
    done
  in
  let spawned = Array.init 3 (fun _ -> Domain.spawn work) in
  work ();
  Array.iter Domain.join spawned;
  Alcotest.(check int)
    "no lost increments" (4 * per_domain)
    (Obs.Metrics.counter_value c)

let test_metric_kinds () =
  let reg = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter reg "x");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs.Metrics: \"x\" is already a counter") (fun () ->
      ignore (Obs.Metrics.gauge reg "x"));
  (* same-kind re-registration returns the same cells *)
  Obs.Metrics.inc (Obs.Metrics.counter reg "x") 3;
  Alcotest.(check int) "shared handle" 3
    (Obs.Metrics.counter_value (Obs.Metrics.counter reg "x"))

let test_histogram_bins () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "h" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 4; 1000; 1023; 1024 ];
  Alcotest.(check int) "count" 8 (Obs.Metrics.histogram_count h);
  let j = Obs.Metrics.snapshot reg in
  (match Obs.Metrics.validate j with
  | Ok () -> ()
  | Error m -> Alcotest.failf "snapshot invalid: %s" m);
  (* the log-binned shape: 0 -> le 0; 1 -> le 1; 2,3 -> le 3; 4 -> le 7;
     1000,1023 -> le 1023; 1024 -> le 2047 *)
  match Obs.Json.member "histograms" j with
  | Some (Obs.Json.Arr [ hj ]) ->
      let bins =
        match Obs.Json.member "bins" hj with
        | Some (Obs.Json.Arr bins) ->
            List.map
              (fun b ->
                let num k =
                  match Obs.Json.member k b with
                  | Some (Obs.Json.Num f) -> int_of_float f
                  | _ -> Alcotest.fail "bad bin"
                in
                (num "le", num "count"))
              bins
        | _ -> Alcotest.fail "no bins"
      in
      Alcotest.(check (list (pair int int)))
        "bins"
        [ (0, 1); (1, 1); (3, 2); (7, 1); (1023, 2); (2047, 1) ]
        bins
  | _ -> Alcotest.fail "no histograms array"

let test_snapshot_validate_rejects () =
  let bad = Obs.Json.(Obj [ ("schema", Str "bogus/v0") ]) in
  match Obs.Metrics.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bogus schema accepted"

let test_counters_monotone_across_snapshots () =
  (* run the instrumented runner twice with recording on: every counter in
     the default registry may only grow between the two snapshots *)
  with_recording (fun () ->
      let burst () =
        ignore
          (Mt.Runner.run ~jobs:test_jobs
             (List.init 6 (fun i ->
                  Mt.Runner.job ~label:(Printf.sprintf "m%d" i) (fun man ->
                      Bdd.size
                        (Bdd.conj man (List.init 40 (Bdd.ithvar man)))))))
      in
      burst ();
      let s0 = Obs.Metrics.snapshot Obs.Metrics.default in
      burst ();
      let s1 = Obs.Metrics.snapshot Obs.Metrics.default in
      (match Obs.Metrics.validate s0 with
      | Ok () -> ()
      | Error m -> Alcotest.failf "snapshot 0 invalid: %s" m);
      (match Obs.Metrics.validate s1 with
      | Ok () -> ()
      | Error m -> Alcotest.failf "snapshot 1 invalid: %s" m);
      let c0 = Obs.Metrics.counters_of_json s0
      and c1 = Obs.Metrics.counters_of_json s1 in
      Alcotest.(check bool) "some counters present" true (c0 <> []);
      List.iter
        (fun (name, v0) ->
          match List.assoc_opt name c1 with
          | Some v1 ->
              if v1 < v0 then
                Alcotest.failf "counter %s went backwards: %f -> %f" name v0
                  v1
          | None -> Alcotest.failf "counter %s disappeared" name)
        c0;
      (* the second burst really did count *)
      let find cs n = Option.value ~default:0. (List.assoc_opt n cs) in
      Alcotest.(check bool)
        "mt.jobs_done grew" true
        (find c1 "mt.jobs_done" >= find c0 "mt.jobs_done" +. 6.))

let test_disabled_is_noop () =
  (* recording off (the default): instrumented pipelines leave the
     registry untouched *)
  Alcotest.(check bool) "recording off" false (Obs.Metrics.recording ());
  let s0 = Obs.Metrics.snapshot Obs.Metrics.default in
  ignore
    (Mt.Runner.run ~jobs:2
       (List.init 4 (fun i ->
            Mt.Runner.job ~label:(Printf.sprintf "d%d" i) (fun man ->
                Bdd.size (Bdd.conj man (List.init 30 (Bdd.ithvar man)))))));
  let s1 = Obs.Metrics.snapshot Obs.Metrics.default in
  Alcotest.(check bool)
    "counters unchanged" true
    (Obs.Metrics.counters_of_json s0 = Obs.Metrics.counters_of_json s1);
  Alcotest.(check bool) "tracing off" false (Obs.Trace.enabled ());
  (* with_span must still run the thunk and propagate its value *)
  Alcotest.(check int) "with_span passthrough" 7
    (Obs.Trace.with_span "off" (fun () -> 7))

(* --- Timing -------------------------------------------------------- *)

let test_timing () =
  let v, elapsed = Obs.Timing.time (fun () -> 41 + 1) in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check bool) "elapsed sane" true (elapsed >= 0. && elapsed < 60.);
  let (), _, gd = Obs.Timing.measure (fun () -> ignore (Array.make 1000 0)) in
  Alcotest.(check bool) "minor words counted" true (gd.Obs.Timing.minor_words >= 0.)

(* --- Kernel observer ----------------------------------------------- *)

let test_kernel_observer () =
  let reg = Obs.Metrics.create () in
  let man = Bdd.create () in
  Obs.Kernel.attach ~registry:reg ~prefix:"k" man;
  with_recording (fun () ->
      let value name = Obs.Metrics.counter_value (Obs.Metrics.counter reg name) in
      (* enough fresh nodes to force unique-table doublings *)
      ignore (Bdd.conj man (List.init 4000 (Bdd.ithvar man)));
      Alcotest.(check bool) "ut grew" true (value "k.ut_grows" > 0);
      let collected = Bdd.gc man ~roots:[] in
      Alcotest.(check bool) "gc collected" true (collected > 0);
      Alcotest.(check int) "gc runs" 1 (value "k.gc_runs");
      Alcotest.(check int) "gc collected nodes" collected
        (value "k.gc_collected_nodes");
      Bdd.set_node_limit man (Some 10);
      (try ignore (Bdd.conj man (List.init 40 (Bdd.ithvar man)))
       with Bdd.Node_limit -> ());
      Alcotest.(check int) "limit hits" 1 (value "k.node_limit_hits");
      Bdd.set_node_limit man None;
      Obs.Kernel.detach man;
      ignore (Bdd.gc man ~roots:[]);
      Alcotest.(check int) "detached: no more events" 1 (value "k.gc_runs"))

let test_kernel_stats_keys () =
  (* the new Bdd.stats keys exist and line up with the observer story *)
  let man = Bdd.create () in
  ignore (Bdd.conj man (List.init 2000 (Bdd.ithvar man)));
  ignore (Bdd.gc man ~roots:[]);
  let st = Bdd.stats man in
  let get k =
    match List.assoc_opt k st with
    | Some v -> v
    | None -> Alcotest.failf "stats key %s missing" k
  in
  Alcotest.(check bool) "ut_grows" true (get "ut_grows" > 0);
  Alcotest.(check int) "gc_runs" 1 (get "gc_runs");
  Alcotest.(check bool) "gc_collected" true (get "gc_collected" > 0);
  Alcotest.(check int) "node_limit_hits" 0 (get "node_limit_hits");
  Alcotest.(check bool) "cache_overwrites" true (get "cache_overwrites" >= 0)

(* --- Runner report ------------------------------------------------- *)

let test_report_carries_stats () =
  let r =
    List.hd
      (Mt.Runner.run ~jobs:1
         [
           Mt.Runner.job ~label:"stats" (fun man ->
               Bdd.size (Bdd.conj man (List.init 50 (Bdd.ithvar man))));
         ])
  in
  let rep = r.Mt.Runner.report in
  let get k = Option.value ~default:(-1) (List.assoc_opt k rep.Mt.Runner.stats) in
  Alcotest.(check int) "nodes_made" rep.Mt.Runner.nodes_made (get "nodes_made");
  Alcotest.(check int) "peak" rep.Mt.Runner.peak_nodes (get "peak_unique");
  Alcotest.(check int) "hits" rep.Mt.Runner.cache_hits (get "cache_hits");
  Alcotest.(check int) "misses" rep.Mt.Runner.cache_misses (get "cache_misses");
  Alcotest.(check bool) "full snapshot" true
    (List.mem_assoc "unique_capacity" rep.Mt.Runner.stats)

(* --- Trace --------------------------------------------------------- *)

let test_trace_runner_roundtrip () =
  in_tmp "trace.json" (fun path ->
      Obs.Trace.start ~out:path ();
      ignore
        (Mt.Runner.run ~jobs:test_jobs
           (List.init 8 (fun i ->
                Mt.Runner.job ~label:(Printf.sprintf "t%d" i) (fun man ->
                    Bdd.size
                      (Bdd.conj man (List.init 60 (Bdd.ithvar man)))))));
      (* a span that raises must still balance *)
      (try
         Obs.Trace.with_span "raiser" (fun () -> failwith "boom")
       with Failure _ -> ());
      Obs.Trace.stop ();
      Alcotest.(check bool) "tracing off after stop" false
        (Obs.Trace.enabled ());
      let j = Obs.Json.read_file path in
      match Obs.Trace.validate j with
      | Error m -> Alcotest.failf "invalid trace: %s" m
      | Ok (events, tracks) ->
          Alcotest.(check bool) "events recorded" true (events > 0);
          (* jobs=4: the calling domain plus three spawned workers, each
             with an mt.worker span, i.e. one lane per worker domain *)
          Alcotest.(check bool)
            (Printf.sprintf "at least %d tracks (got %d)" test_jobs tracks)
            true (tracks >= test_jobs))

let test_trace_validate_rejects () =
  let ev kvs = Obs.Json.Obj kvs in
  let bad_unbalanced =
    Obs.Json.Arr
      [
        ev
          [
            ("ph", Obs.Json.Str "E");
            ("tid", Obs.Json.num_int 1);
            ("ts", Obs.Json.Num 0.);
          ];
      ]
  in
  (match Obs.Trace.validate bad_unbalanced with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "end-without-begin accepted");
  let bad_backwards =
    Obs.Json.Arr
      [
        ev
          [
            ("name", Obs.Json.Str "a");
            ("ph", Obs.Json.Str "i");
            ("tid", Obs.Json.num_int 1);
            ("ts", Obs.Json.Num 10.);
          ];
        ev
          [
            ("name", Obs.Json.Str "b");
            ("ph", Obs.Json.Str "i");
            ("tid", Obs.Json.num_int 1);
            ("ts", Obs.Json.Num 5.);
          ];
      ]
  in
  match Obs.Trace.validate bad_backwards with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "backwards timestamps accepted"

let tests =
  ( "obs",
    [
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "counter parallel exact" `Quick
        test_counter_parallel_exact;
      Alcotest.test_case "metric kinds" `Quick test_metric_kinds;
      Alcotest.test_case "histogram bins" `Quick test_histogram_bins;
      Alcotest.test_case "snapshot validate rejects" `Quick
        test_snapshot_validate_rejects;
      Alcotest.test_case "counters monotone across snapshots" `Quick
        test_counters_monotone_across_snapshots;
      Alcotest.test_case "disabled is noop" `Quick test_disabled_is_noop;
      Alcotest.test_case "timing" `Quick test_timing;
      Alcotest.test_case "kernel observer" `Quick test_kernel_observer;
      Alcotest.test_case "kernel stats keys" `Quick test_kernel_stats_keys;
      Alcotest.test_case "report carries stats" `Quick
        test_report_carries_stats;
      Alcotest.test_case "trace runner roundtrip" `Quick
        test_trace_runner_roundtrip;
      Alcotest.test_case "trace validate rejects" `Quick
        test_trace_validate_rejects;
    ] )
