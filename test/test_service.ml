(* Mt.Service: the persistent sharded worker pool under the serve layer.
   Covers execution, per-shard FIFO ordering, bounded-queue rejection
   (deterministically, by blocking the worker on a gate), crash isolation
   and idempotent drain. *)

let test_runs_everything () =
  let pool = Mt.Service.create ~workers:3 ~queue_depth:32 () in
  let ran = Atomic.make 0 in
  for i = 0 to 29 do
    Alcotest.(check bool)
      "submit accepted" true
      (Mt.Service.submit pool ~shard:i (fun () -> Atomic.incr ran))
  done;
  Mt.Service.drain pool;
  Alcotest.(check int) "all closures ran" 30 (Atomic.get ran);
  Alcotest.(check int) "completed counter" 30 (Mt.Service.completed pool);
  Alcotest.(check int) "nothing pending" 0 (Mt.Service.pending pool)

let test_shard_order () =
  (* one worker: everything lands on one shard and must run in
     submission order *)
  let pool = Mt.Service.create ~workers:1 ~queue_depth:64 () in
  let log = ref [] in
  let lock = Mutex.create () in
  for i = 0 to 19 do
    ignore
      (Mt.Service.submit pool ~shard:0 (fun () ->
           Mutex.lock lock;
           log := i :: !log;
           Mutex.unlock lock))
  done;
  Mt.Service.drain pool;
  Alcotest.(check (list int)) "FIFO per shard" (List.init 20 Fun.id)
    (List.rev !log)

(* a gate the test holds closed while the worker is inside a job *)
type gate = {
  m : Mutex.t;
  c : Condition.t;
  mutable entered : bool;
  mutable release : bool;
}

let new_gate () =
  { m = Mutex.create (); c = Condition.create (); entered = false; release = false }

let block_on g =
  Mutex.lock g.m;
  g.entered <- true;
  Condition.broadcast g.c;
  while not g.release do
    Condition.wait g.c g.m
  done;
  Mutex.unlock g.m

let await_entered g =
  Mutex.lock g.m;
  while not g.entered do
    Condition.wait g.c g.m
  done;
  Mutex.unlock g.m

let open_gate g =
  Mutex.lock g.m;
  g.release <- true;
  Condition.broadcast g.c;
  Mutex.unlock g.m

let test_bounded_rejection () =
  let pool = Mt.Service.create ~workers:1 ~queue_depth:1 () in
  let g = new_gate () in
  (* job A occupies the worker... *)
  Alcotest.(check bool)
    "A accepted" true
    (Mt.Service.submit pool ~shard:0 (fun () -> block_on g));
  await_entered g;
  (* ...so B fills the depth-1 queue and C must be rejected *)
  Alcotest.(check bool)
    "B accepted" true
    (Mt.Service.submit pool ~shard:0 (fun () -> ()));
  Alcotest.(check bool)
    "C rejected on the full queue" false
    (Mt.Service.submit pool ~shard:0 (fun () -> ()));
  Alcotest.(check int) "B is pending" 1 (Mt.Service.pending pool);
  open_gate g;
  Mt.Service.drain pool;
  Alcotest.(check int) "A and B completed" 2 (Mt.Service.completed pool)

let test_crash_isolation () =
  let pool = Mt.Service.create ~workers:1 ~queue_depth:8 () in
  let ran = Atomic.make false in
  ignore (Mt.Service.submit pool ~shard:0 (fun () -> failwith "boom"));
  ignore (Mt.Service.submit pool ~shard:0 (fun () -> Atomic.set ran true));
  Mt.Service.drain pool;
  Alcotest.(check bool) "job after the crash still ran" true (Atomic.get ran);
  Alcotest.(check int)
    "both count as completed" 2
    (Mt.Service.completed pool)

(* --- supervision -------------------------------------------------------- *)

let test_busy_and_respawn () =
  let pool = Mt.Service.create ~workers:1 ~queue_depth:8 () in
  let g = new_gate () in
  ignore (Mt.Service.submit pool ~shard:0 ~label:"wedge" (fun () -> block_on g));
  await_entered g;
  (* the worker is visibly busy on the labeled closure... *)
  (match Mt.Service.busy pool ~shard:0 with
  | Some ("wedge", age) ->
      Alcotest.(check bool) "age is non-negative" true (age >= 0.0)
  | Some (l, _) -> Alcotest.failf "busy on %S, wanted \"wedge\"" l
  | None -> Alcotest.fail "worker should be busy");
  (* ...but not stalled against a generous timeout *)
  Alcotest.(check (list (pair int (option string))))
    "not stalled yet" []
    (Mt.Service.check_stalled pool ~hang_timeout:30.0);
  (* force the respawn: the wedged closure is the quarantined one *)
  (match Mt.Service.respawn pool ~shard:0 with
  | Some (Some "wedge") -> ()
  | Some q ->
      Alcotest.failf "quarantined %s, wanted Some \"wedge\""
        (match q with Some l -> Printf.sprintf "Some %S" l | None -> "None")
  | None -> Alcotest.fail "respawn refused (pool is not draining)");
  Alcotest.(check int) "one respawn" 1 (Mt.Service.respawns pool);
  (* the replacement worker serves the shard *)
  let ran = Atomic.make false in
  Alcotest.(check bool)
    "submit after respawn accepted" true
    (Mt.Service.submit pool ~shard:0 (fun () -> Atomic.set ran true));
  (* release the zombie so it notices it was superseded and exits *)
  open_gate g;
  Mt.Service.drain pool;
  Alcotest.(check bool) "work ran on the replacement" true (Atomic.get ran)

let test_poison_kills_worker_and_respawn_recovers () =
  let pool = Mt.Service.create ~workers:1 ~queue_depth:8 () in
  ignore
    (Mt.Service.submit pool ~shard:0 ~label:"poisoned" (fun () ->
         raise Mt.Service.Poison));
  (* the domain dies without clearing its busy flag: after the hang
     timeout it is indistinguishable from a wedge and gets respawned *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec await_stalled () =
    match Mt.Service.check_stalled pool ~hang_timeout:0.05 with
    | [ (0, Some "poisoned") ] -> ()
    | [] when Unix.gettimeofday () < deadline ->
        Thread.delay 0.02;
        await_stalled ()
    | other ->
        Alcotest.failf "check_stalled returned %d entries, wanted the poisoned shard"
          (List.length other)
  in
  await_stalled ();
  let ran = Atomic.make false in
  Alcotest.(check bool)
    "submit after poison accepted" true
    (Mt.Service.submit pool ~shard:0 (fun () -> Atomic.set ran true));
  Mt.Service.drain pool;
  Alcotest.(check bool) "replacement worker ran the job" true (Atomic.get ran)

let test_supervise_thread_recovers_and_queue_survives () =
  let pool = Mt.Service.create ~workers:1 ~queue_depth:8 () in
  let events = ref [] in
  let lock = Mutex.create () in
  ignore
    (Mt.Service.supervise pool ~interval:0.02 ~hang_timeout:0.1
       ~on_respawn:(fun ~shard ~quarantined ->
         Mutex.lock lock;
         events := (shard, quarantined) :: !events;
         Mutex.unlock lock));
  (* a wedged closure, with an innocent one already queued behind it *)
  ignore
    (Mt.Service.submit pool ~shard:0 ~label:"stuck" (fun () -> Thread.delay 3.0));
  let ran = Atomic.make false in
  ignore (Mt.Service.submit pool ~shard:0 (fun () -> Atomic.set ran true));
  let deadline = Unix.gettimeofday () +. 5.0 in
  while not (Atomic.get ran) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  Alcotest.(check bool)
    "queued work survived the respawn and ran" true (Atomic.get ran);
  Mutex.lock lock;
  let quarantined_stuck = List.mem (0, Some "stuck") !events in
  Mutex.unlock lock;
  Alcotest.(check bool)
    "the supervisor quarantined the stuck label" true quarantined_stuck;
  Alcotest.(check bool) "respawns counted" true (Mt.Service.respawns pool >= 1);
  Mt.Service.drain pool

let test_drain_rejects_and_is_idempotent () =
  let pool = Mt.Service.create ~workers:2 ~queue_depth:8 () in
  ignore (Mt.Service.submit pool ~shard:0 (fun () -> ()));
  Mt.Service.drain pool;
  Alcotest.(check bool) "draining" true (Mt.Service.draining pool);
  Alcotest.(check bool)
    "submit after drain rejected" false
    (Mt.Service.submit pool ~shard:0 (fun () -> ()));
  (* a second drain must return immediately *)
  Mt.Service.drain pool

let tests =
  ( "mt-service",
    [
      Alcotest.test_case "runs everything submitted" `Quick test_runs_everything;
      Alcotest.test_case "per-shard FIFO order" `Quick test_shard_order;
      Alcotest.test_case "bounded queue rejects, never blocks" `Quick
        test_bounded_rejection;
      Alcotest.test_case "a crashing closure does not kill its worker" `Quick
        test_crash_isolation;
      Alcotest.test_case "busy introspection and forced respawn" `Quick
        test_busy_and_respawn;
      Alcotest.test_case "a poisoned worker domain is detected and replaced"
        `Quick test_poison_kills_worker_and_respawn_recovers;
      Alcotest.test_case "the supervisor thread recovers a wedged shard" `Quick
        test_supervise_thread_recovers_and_queue_survives;
      Alcotest.test_case "drain rejects new work and is idempotent" `Quick
        test_drain_rejects_and_is_idempotent;
    ] )
