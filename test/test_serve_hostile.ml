(* Socket-hostility tests: a real server attacked over a real socket with
   torn, corrupt and stalled frames, plus a worker killed mid-request.

   The contract under attack is always the same: the server answers with
   a typed Error or hangs up the one abusive connection — it never
   wedges a worker, never corrupts another session, and never exits.
   Each test finishes by proving the server still answers a clean
   ping. *)

let with_server cfg f =
  let t =
    Serve.Server.start { cfg with Serve.Server.bind = Serve.Server.Tcp 0 }
  in
  Fun.protect ~finally:(fun () -> Serve.Server.drain t) (fun () -> f t)

let bind_of t =
  match Serve.Server.address t with
  | Unix.ADDR_INET (_, port) -> Serve.Server.Tcp port
  | Unix.ADDR_UNIX path -> Serve.Server.Unix_path path

(* a raw attacker socket: no Client, no framing discipline *)
let with_raw t f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (* bound reads so a buggy server (or test) cannot hang the suite *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.connect fd (Serve.Server.address t);
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let send_all fd s =
  let b = Bytes.of_string s in
  let n = ref 0 in
  while !n < Bytes.length b do
    n := !n + Unix.write fd b !n (Bytes.length b - !n)
  done

(* everything the peer sends until it hangs up *)
let read_to_eof fd =
  let buf = Buffer.create 256 and chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        Buffer.contents buf
  in
  go ()

let server_still_answers t =
  let c = Serve.Client.connect_sockaddr (Serve.Server.address t) in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () -> Serve.Client.ping c)

(* --- garbage and torn frames ------------------------------------------- *)

let test_garbage_frame () =
  with_server Serve.Server.default_config (fun t ->
      with_raw t (fun fd ->
          send_all fd (String.make 64 '\xAB');
          (* the server may answer a typed protocol Error before hanging
             up, or just hang up — but must never stay silent forever *)
          let bytes = read_to_eof fd in
          if bytes <> "" then
            match Serve.Proto.decode_reply bytes with
            | Serve.Proto.Error _ -> ()
            | r ->
                Alcotest.failf "garbage drew a non-Error reply %a"
                  Serve.Proto.pp_reply r);
      server_still_answers t)

let test_truncated_frame_then_close () =
  with_server Serve.Server.default_config (fun t ->
      with_raw t (fun fd ->
          let frame = Serve.Proto.encode_request Serve.Proto.Ping in
          send_all fd (String.sub frame 0 (String.length frame / 2));
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          (* mid-frame EOF: the server must just drop the connection *)
          ignore (read_to_eof fd));
      server_still_answers t)

let test_bit_flipped_frame_is_typed_error () =
  with_server Serve.Server.default_config (fun t ->
      with_raw t (fun fd ->
          let frame =
            Serve.Proto.encode_request
              (Serve.Proto.Lit { var = 3; phase = true })
          in
          (* flip a CRC bit (the last byte), leaving the length header
             intact so the server reads a complete — but corrupt —
             frame *)
          let b = Bytes.of_string frame in
          let last = Bytes.length b - 1 in
          Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 1));
          send_all fd (Bytes.to_string b);
          let bytes = read_to_eof fd in
          (match Serve.Proto.decode_reply bytes with
          | Serve.Proto.Error m ->
              Alcotest.(check bool)
                "the Error names a protocol error" true
                (String.length m >= 14 && String.sub m 0 14 = "protocol error")
          | r ->
              Alcotest.failf "corrupt frame drew %a" Serve.Proto.pp_reply r));
      server_still_answers t)

let test_stalled_sender_times_out () =
  let cfg = { Serve.Server.default_config with io_timeout = Some 0.3 } in
  with_server cfg (fun t ->
      with_raw t (fun fd ->
          let frame = Serve.Proto.encode_request Serve.Proto.Ping in
          send_all fd (String.sub frame 0 (String.length frame / 2));
          (* ...and stall.  The server's SO_RCVTIMEO must fire and close
             the connection; our bounded read sees the hangup. *)
          ignore (read_to_eof fd));
      Alcotest.(check bool)
        "the server counted an io timeout" true
        (Serve.Server.io_timeouts t >= 1);
      server_still_answers t)

(* --- a killed worker must not lose other sessions ----------------------- *)

let test_worker_kill_preserves_sessions () =
  (* one worker shared by two durable sessions.  A marker request wedges
     it (once) past the supervisor's hang timeout: the supervisor must
     respawn the domain, quarantine only the poisoned session, rebuild it
     from its journal — and the other session must not notice. *)
  let wedged = Atomic.make false in
  let on_dispatch = function
    | Serve.Proto.Fetch { handle = 777777 } ->
        if not (Atomic.exchange wedged true) then Thread.delay 1.0
    | _ -> ()
  in
  let cfg =
    {
      Serve.Server.default_config with
      workers = 1;
      hang_timeout = Some 0.2;
      on_dispatch = Some on_dispatch;
    }
  in
  with_server cfg (fun t ->
      let bind = bind_of t in
      let ca = Serve.Client.connect_retrying ~key:"victim" bind in
      let cb = Serve.Client.connect_retrying ~key:"bystander" bind in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close ca;
          Serve.Client.close cb)
        (fun () ->
          let handle_of = function
            | Serve.Proto.Handle { id; _ } -> id
            | r -> Alcotest.failf "expected Handle, got %a" Serve.Proto.pp_reply r
          in
          let ha =
            handle_of
              (Serve.Client.call_idem ca
                 (Serve.Proto.Lit { var = 1; phase = true }))
          in
          let hb =
            handle_of
              (Serve.Client.call_idem cb
                 (Serve.Proto.Lit { var = 2; phase = true }))
          in
          (* the poisoned request: wedges the worker on victim's session.
             The supervisor kills + respawns the domain and quarantines
             the session; the retrying client reconnects, re-attaches and
             retries — by then the hook lets it through to a clean
             "unknown handle" error. *)
          (match
             Serve.Client.call_idem ca (Serve.Proto.Fetch { handle = 777777 })
           with
          | Serve.Proto.Error _ -> ()
          | r ->
              Alcotest.failf "poisoned request drew %a" Serve.Proto.pp_reply r);
          Alcotest.(check bool) "the worker was respawned" true
            (Serve.Server.respawns t >= 1);
          Alcotest.(check bool) "the session was quarantined" true
            (Serve.Server.quarantined t >= 1);
          Alcotest.(check bool) "the session was rebuilt" true
            (Serve.Server.rebuilt_sessions t >= 1);
          (* victim's pre-crash handle survived the rebuild *)
          let man = Bdd.create ~nvars:4 () in
          (match
             Serve.Client.call_idem ca (Serve.Proto.Fetch { handle = ha })
           with
          | Serve.Proto.Bdd_payload { bdd } ->
              let f = Bdd.import man (Bdd.serialized_of_string bdd) in
              Alcotest.(check bool)
                "victim's handle still holds x1" true
                (Bdd.equal f (Bdd.ithvar man 1))
          | r -> Alcotest.failf "victim fetch drew %a" Serve.Proto.pp_reply r);
          (* the bystander session never noticed *)
          match
            Serve.Client.call_idem cb (Serve.Proto.Fetch { handle = hb })
          with
          | Serve.Proto.Bdd_payload { bdd } ->
              let f = Bdd.import man (Bdd.serialized_of_string bdd) in
              Alcotest.(check bool)
                "bystander's handle still holds x2" true
                (Bdd.equal f (Bdd.ithvar man 2))
          | r -> Alcotest.failf "bystander fetch drew %a" Serve.Proto.pp_reply r))

(* --- journal round-trip and corruption ---------------------------------- *)

let test_journal_roundtrip_and_corruption () =
  let man = Bdd.create ~nvars:4 () in
  let x0 = Bdd.ithvar man 0 and x1 = Bdd.ithvar man 1 in
  let entries =
    [
      Serve.Session.J_lit { handle = 1; var = 0; phase = true };
      Serve.Session.J_lit { handle = 2; var = 1; phase = true };
      Serve.Session.J_op { handle = 3; op = Serve.Proto.And (1, 2) };
      Serve.Session.J_bytes
        { handle = 4; bdd = Bdd.serialized_to_string (Bdd.export man (Bdd.bxor man x0 x1)) };
      Serve.Session.J_free [ 2 ];
    ]
  in
  let s = Serve.Session.journal_to_string entries in
  Alcotest.(check bool) "journal round-trips" true
    (Serve.Session.journal_of_string s = entries);
  (* replay gives back the same functions under the same handles *)
  let sess, dropped = Serve.Session.rebuild ~id:42 entries in
  Alcotest.(check int) "nothing dropped" 0 dropped;
  let fetch h = Bdd.import man (Bdd.export (Serve.Session.man sess) (Serve.Session.get sess h)) in
  Alcotest.(check bool) "handle 1 is x0" true (Bdd.equal (fetch 1) x0);
  Alcotest.(check bool)
    "handle 3 is x0 AND x1" true
    (Bdd.equal (fetch 3) (Bdd.band man x0 x1));
  Alcotest.(check bool)
    "handle 4 is x0 XOR x1" true
    (Bdd.equal (fetch 4) (Bdd.bxor man x0 x1));
  (match Serve.Session.get sess 2 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "freed handle 2 must stay freed after replay");
  (* any flipped byte in the encoding must be rejected, not replayed *)
  let b = Bytes.of_string s in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x10));
  match Serve.Session.journal_of_string (Bytes.to_string b) with
  | _ -> Alcotest.fail "corrupt journal decoded"
  | exception Bdd.Corrupt _ -> ()

let test_journal_compacts_only_when_it_shrinks () =
  (* a session holding more live handles than the compaction cap must not
     re-compact on every record: compaction rewrites the journal to one
     entry per live handle, so when that floor is above the cap the old
     trigger exported every live BDD to bytes on every request.  The
     deterministic J_lit entries staying as ops proves compaction never
     fired. *)
  let sess = Serve.Session.create ~id:7 () in
  let man = Serve.Session.man sess in
  let n = 600 in
  for h = 1 to n do
    let var = h mod 16 in
    Serve.Session.put_at sess ~handle:h (Bdd.ithvar man var);
    Serve.Session.record sess (Serve.Session.J_lit { handle = h; var; phase = true })
  done;
  Alcotest.(check int) "no compaction: one entry per live handle" n
    (Serve.Session.journal_length sess);
  let exported =
    List.filter
      (function Serve.Session.J_bytes _ -> true | _ -> false)
      (Serve.Session.journal sess)
  in
  Alcotest.(check int) "lit entries were never exported to bytes" 0
    (List.length exported);
  (* ...while a journal that CAN shrink (few live handles, much churn)
     still self-compacts past the cap *)
  let small = Serve.Session.create ~id:8 () in
  let man2 = Serve.Session.man small in
  for h = 1 to 8 do
    Serve.Session.put_at small ~handle:h (Bdd.ithvar man2 h)
  done;
  for i = 1 to 600 do
    let h = 1 + (i mod 8) in
    Serve.Session.record small
      (Serve.Session.J_lit { handle = h; var = h; phase = true })
  done;
  Alcotest.(check bool) "a shrinkable journal compacted" true
    (Serve.Session.journal_length small < 200)

(* --- stale socket files -------------------------------------------------- *)

let test_stale_socket_is_reclaimed () =
  let dir = Filename.temp_file "serve_stale" "" in
  Unix.unlink dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "bdd.sock" in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* a corpse: a bound-then-closed socket leaves a dead file behind *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.close fd;
      Alcotest.(check bool) "the corpse exists" true (Sys.file_exists path);
      (* a restarting server must reclaim it... *)
      let cfg =
        { Serve.Server.default_config with bind = Serve.Server.Unix_path path }
      in
      let t = Serve.Server.start cfg in
      Fun.protect
        ~finally:(fun () -> Serve.Server.drain t)
        (fun () ->
          server_still_answers t;
          (* ...but never steal a live server's socket *)
          match Serve.Server.start cfg with
          | t2 ->
              Serve.Server.drain t2;
              Alcotest.fail "a second server bound a live socket"
          | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
              server_still_answers t))

let tests =
  ( "serve-hostile",
    [
      Alcotest.test_case "garbage frames are refused, server survives" `Quick
        test_garbage_frame;
      Alcotest.test_case "mid-frame EOF drops only that connection" `Quick
        test_truncated_frame_then_close;
      Alcotest.test_case "a corrupt frame draws a typed protocol error" `Quick
        test_bit_flipped_frame_is_typed_error;
      Alcotest.test_case "a stalled sender trips the io timeout" `Quick
        test_stalled_sender_times_out;
      Alcotest.test_case "a killed worker loses no session state" `Quick
        test_worker_kill_preserves_sessions;
      Alcotest.test_case "journals round-trip and reject corruption" `Quick
        test_journal_roundtrip_and_corruption;
      Alcotest.test_case "journal compaction fires only when it shrinks" `Quick
        test_journal_compacts_only_when_it_shrinks;
      Alcotest.test_case "stale socket files are reclaimed, live ones are not"
        `Quick test_stale_socket_is_reclaimed;
    ] )
