(* Out-of-core tiered store: the spillable priority queue, the levelized
   cold-tier file format (round trips, canonical equality, corruption can
   only surface as Bdd.Corrupt — mirroring the PR-4 checkpoint
   properties), the streaming apply/reduce against the in-RAM kernel as
   oracle, and the tiered store's lifecycle. *)

let qtest ?(count = 100) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let nvars = 6

let rm_rf dir =
  (try
     Array.iter
       (fun name ->
         try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let with_dir f =
  let dir = Filename.temp_file "store" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- priority queue --------------------------------------------------- *)

let prop_pq_sorted =
  qtest "pq pops in lexicographic order (with forced spills)"
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
      with_dir @@ fun dir ->
      (* mem_bound below the minimum clamp (64) plus enough elements
         guarantees run files get exercised on longer lists *)
      let q = Store.Pq.create ~mem_bound:64 ~dir ~arity:2 () in
      List.iter (fun (a, b) -> Store.Pq.push q [| a; b |]) pairs;
      let n = List.length pairs in
      if Store.Pq.length q <> n then QCheck.Test.fail_report "length mismatch";
      let out = ref [] in
      let dst = Array.make 2 0 in
      while Store.Pq.pop q dst do
        out := (dst.(0), dst.(1)) :: !out
      done;
      Store.Pq.close q;
      let got = List.rev !out in
      got = List.sort compare pairs)

let test_pq_spills () =
  with_dir @@ fun dir ->
  let q = Store.Pq.create ~mem_bound:64 ~dir ~arity:1 () in
  for i = 1000 downto 1 do
    Store.Pq.push q [| i |]
  done;
  Alcotest.(check bool) "spilled runs" true (Store.Pq.runs_spilled q > 0);
  Alcotest.(check bool) "spilled bytes" true (Store.Pq.spilled_bytes q > 0);
  let dst = Array.make 1 0 in
  for i = 1 to 1000 do
    Alcotest.(check bool) "pop" true (Store.Pq.pop q dst);
    Alcotest.(check int) "order" i dst.(0)
  done;
  Alcotest.(check bool) "drained" false (Store.Pq.pop q dst);
  Store.Pq.close q;
  Alcotest.(check (array string)) "run files removed" [||] (Sys.readdir dir)

(* --- level files ------------------------------------------------------- *)

let level_file_of dir man f =
  Store.Level_file.of_serialized
    (Filename.concat dir "f.blv")
    (Bdd.export man f)

let prop_level_file_round_trip =
  qtest "level file round trip"
    (Tgen.arbitrary_expr ~nvars ~depth:6)
    (fun e ->
      with_dir @@ fun dir ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e in
      let lf = level_file_of dir man f in
      let g = Bdd.import man (Store.Level_file.to_serialized lf) in
      Bdd.equal f g)

let prop_level_file_canonical =
  qtest "equal functions yield word-identical level files"
    (Tgen.arbitrary_expr ~nvars ~depth:6)
    (fun e ->
      with_dir @@ fun dir ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e in
      (* same function through a different construction: double negation
         and a re-export from a second manager *)
      let man2 = Bdd.create ~nvars () in
      let f2 = Bdd.import man2 (Bdd.export man (Bdd.bnot man (Bdd.bnot man f))) in
      let a =
        Store.Level_file.of_serialized
          (Filename.concat dir "a.blv")
          (Bdd.export man f)
      and b =
        Store.Level_file.of_serialized
          (Filename.concat dir "b.blv")
          (Bdd.export man2 f2)
      in
      Store.Level_file.equal a b)

let prop_level_file_truncation =
  qtest "level file truncation -> Corrupt or identical"
    QCheck.(pair (Tgen.arbitrary_expr ~nvars ~depth:6) (int_bound 1_000_000))
    (fun (e, cut_seed) ->
      with_dir @@ fun dir ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e in
      let path = Filename.concat dir "f.blv" in
      let orig = Store.Level_file.of_serialized path (Bdd.export man f) in
      let len = (Unix.stat path).Unix.st_size in
      let cut = cut_seed mod len in
      let truncated = Filename.concat dir "t.blv" in
      let ic = open_in_bin path in
      let data = really_input_string ic cut in
      close_in ic;
      let oc = open_out_bin truncated in
      output_string oc data;
      close_out oc;
      match Store.Level_file.open_map truncated with
      | exception Bdd.Corrupt _ -> true
      | lf -> Store.Level_file.equal orig lf)

let prop_level_file_bit_flip =
  qtest ~count:200 "level file bit flip -> Corrupt"
    QCheck.(pair (Tgen.arbitrary_expr ~nvars ~depth:6) (int_bound 10_000_000))
    (fun (e, seed) ->
      with_dir @@ fun dir ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e in
      let path = Filename.concat dir "f.blv" in
      ignore (Store.Level_file.of_serialized path (Bdd.export man f));
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let pos = seed mod (String.length data * 8) in
      let flipped = Bytes.of_string data in
      Bytes.set flipped (pos / 8)
        (Char.chr (Char.code data.[pos / 8] lxor (1 lsl (pos mod 8))));
      let oc = open_out_bin path in
      output_bytes oc flipped;
      close_out oc;
      match Store.Level_file.open_map path with
      | exception Bdd.Corrupt _ -> true
      | _ -> false)

(* --- streaming apply / count ------------------------------------------ *)

let ops =
  [
    (Store.Stream.And, Bdd.band, "and");
    (Store.Stream.Or, Bdd.bor, "or");
    (Store.Stream.Diff, Bdd.bdiff, "diff");
    (Store.Stream.Xor, Bdd.bxor, "xor");
  ]

let prop_stream_apply_matches_kernel =
  qtest ~count:150 "streaming apply == in-RAM kernel"
    QCheck.(
      pair
        (Tgen.arbitrary_expr ~nvars ~depth:5)
        (Tgen.arbitrary_expr ~nvars ~depth:5))
    (fun (ea, eb) ->
      with_dir @@ fun dir ->
      let man = Bdd.create ~nvars () in
      let a = Tgen.build_bdd man ea and b = Tgen.build_bdd man eb in
      let la =
        Store.Level_file.of_serialized
          (Filename.concat dir "a.blv")
          (Bdd.export man a)
      and lb =
        Store.Level_file.of_serialized
          (Filename.concat dir "b.blv")
          (Bdd.export man b)
      in
      List.for_all
        (fun (sop, bop, name) ->
          let out, _stats =
            Store.Stream.apply ~dir
              ~path:(Filename.concat dir (name ^ ".blv"))
              sop la lb
          in
          let got = Bdd.import man (Store.Level_file.to_serialized out) in
          let want = bop man a b in
          (* canonical identity: the streamed file must also be word-equal
             to a direct demotion of the oracle result *)
          Bdd.equal got want
          && Store.Level_file.equal out
               (Store.Level_file.of_serialized
                  (Filename.concat dir (name ^ ".oracle.blv"))
                  (Bdd.export man want)))
        ops)

let prop_stream_apply_bounded_memory =
  qtest ~count:20 "streaming apply with tiny queues still exact"
    QCheck.(
      pair
        (Tgen.arbitrary_expr ~nvars ~depth:6)
        (Tgen.arbitrary_expr ~nvars ~depth:6))
    (fun (ea, eb) ->
      with_dir @@ fun dir ->
      let man = Bdd.create ~nvars () in
      let a = Tgen.build_bdd man ea and b = Tgen.build_bdd man eb in
      let la =
        Store.Level_file.of_serialized
          (Filename.concat dir "a.blv")
          (Bdd.export man a)
      and lb =
        Store.Level_file.of_serialized
          (Filename.concat dir "b.blv")
          (Bdd.export man b)
      in
      (* mem_bound clamps at 64 tuples — far below the traffic of a
         6-var apply, so queue spilling is exercised for real *)
      let out, _ =
        Store.Stream.apply ~dir ~mem_bound:1
          ~path:(Filename.concat dir "out.blv")
          Store.Stream.And la lb
      in
      Bdd.equal
        (Bdd.import man (Store.Level_file.to_serialized out))
        (Bdd.band man a b))

let prop_stream_count_minterms =
  qtest "streaming minterm count == kernel count"
    (Tgen.arbitrary_expr ~nvars ~depth:6)
    (fun e ->
      with_dir @@ fun dir ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e in
      let lf = level_file_of dir man f in
      Store.Stream.count_minterms ~dir lf = Bdd.count_minterms man f ~nvars)

(* --- tiered store ------------------------------------------------------ *)

let test_tiered_round_trip () =
  with_dir @@ fun dir ->
  let man = Bdd.create ~nvars () in
  let f =
    Bdd.bxor man
      (Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 3))
      (Bdd.bor man (Bdd.ithvar man 1) (Bdd.ithvar man 5))
  in
  let st = Store.Tiered.create ~dir man in
  let h = Store.Tiered.demote st f in
  Alcotest.(check bool) "cold nodes" true (Store.Tiered.cold_nodes st > 0);
  Alcotest.(check int)
    "stats cold_nodes" (Store.Tiered.cold_nodes st)
    (List.assoc "cold_nodes" (Bdd.stats man));
  Alcotest.(check bool)
    "stats spilled_bytes" true
    (List.assoc "spilled_bytes" (Bdd.stats man) > 0);
  Alcotest.(check bool) "promote" true (Bdd.equal f (Store.Tiered.promote st h));
  (* spilling drops the mappings; the next access remaps and re-verifies *)
  Store.Tiered.spill st;
  Alcotest.(check bool)
    "promote after spill" true
    (Bdd.equal f (Store.Tiered.promote st h));
  let g = Bdd.band man f (Bdd.ithvar man 2) in
  let hg = Store.Tiered.demote st g in
  let hand = Store.Tiered.apply st Store.Stream.And h hg in
  Alcotest.(check bool)
    "cold apply" true
    (Bdd.equal (Bdd.band man f g) (Store.Tiered.promote st hand));
  Alcotest.(check (float 0.0))
    "cold count" (Bdd.count_minterms man g ~nvars)
    (Store.Tiered.count_minterms st hg);
  Alcotest.(check bool) "equal (and f g) g" true (Store.Tiered.equal st hand hg);
  Store.Tiered.drop st h;
  Store.Tiered.drop st hg;
  Store.Tiered.drop st hand;
  Alcotest.(check int) "all dropped" 0 (Store.Tiered.cold_nodes st);
  Store.Tiered.close st;
  Alcotest.(check int) "stats reset" 0 (List.assoc "cold_nodes" (Bdd.stats man))

let test_tiered_disk_full () =
  with_dir @@ fun dir ->
  let man = Bdd.create ~nvars () in
  let f = Bdd.conj man (List.init nvars (Bdd.ithvar man)) in
  let st = Store.Tiered.create ~dir ~disk_budget_bytes:8 man in
  (match Store.Tiered.demote st f with
  | exception Store.Tiered.Disk_full -> ()
  | _ -> Alcotest.fail "expected Disk_full");
  (* the partial file was removed and the store remains usable *)
  let st2 = Store.Tiered.create ~dir:(Filename.concat dir "sub") man in
  let h = Store.Tiered.demote st2 f in
  Alcotest.(check bool) "usable" true (Bdd.equal f (Store.Tiered.promote st2 h));
  Store.Tiered.close st2;
  Store.Tiered.close st

let test_tiered_constants () =
  with_dir @@ fun dir ->
  let man = Bdd.create ~nvars () in
  let st = Store.Tiered.create ~dir man in
  let hf = Store.Tiered.demote st (Bdd.ff man)
  and ht = Store.Tiered.demote st (Bdd.tt man) in
  Alcotest.(check (option int)) "ff const" (Some 0) (Store.Tiered.is_const st hf);
  Alcotest.(check (option int)) "tt const" (Some 1) (Store.Tiered.is_const st ht);
  Alcotest.(check (float 0.0)) "ff count" 0.0 (Store.Tiered.count_minterms st hf);
  Alcotest.(check (float 0.0))
    "tt count"
    (Float.of_int (1 lsl nvars))
    (Store.Tiered.count_minterms st ht);
  (* x AND NOT x collapses to ff entirely out of core *)
  let hx = Store.Tiered.demote st (Bdd.ithvar man 0) in
  let hz = Store.Tiered.apply st Store.Stream.Diff hx hx in
  Alcotest.(check (option int)) "diff self" (Some 0) (Store.Tiered.is_const st hz);
  Store.Tiered.close st

(* --- out-of-core reachability ------------------------------------------ *)

(* Ooc.run under a hot budget far below the in-RAM peak must migrate to
   the cold tier and still reach the exact fixpoint, with a reached set
   identical (as a BDD) to the unrestricted Bfs oracle. *)
let test_ooc_matches_bfs () =
  List.iter
    (fun c ->
      with_dir @@ fun dir ->
      let compiled = Compile.compile c in
      let trans = Trans.build compiled in
      let oracle = Bfs.run trans in
      let man2 = Bdd.create ~nvars:0 () in
      let trans2 = Trans.import man2 (Trans.export trans) in
      let baseline = Bdd.unique_size man2 in
      let budget = baseline + ((oracle.Traversal.peak_live_nodes - baseline) / 4) in
      let r = Ooc.run ~store_dir:dir ~hot_budget:budget trans2 in
      Alcotest.(check bool)
        (Circuit.name c ^ ": exact") true r.Ooc.exact;
      Alcotest.(check bool)
        (Circuit.name c ^ ": migrated") true (r.Ooc.migrations > 0);
      Alcotest.(check bool)
        (Circuit.name c ^ ": used cold tier") true
        (r.Ooc.peak_cold_nodes > 0 && r.Ooc.spilled_bytes > 0);
      let man = Trans.man trans in
      Alcotest.(check bool)
        (Circuit.name c ^ ": reached sets equal")
        true
        (Bdd.equal oracle.Traversal.reached (Bdd.import man r.Ooc.reached));
      Alcotest.(check (float 1e-6))
        (Circuit.name c ^ ": states")
        oracle.Traversal.states r.Ooc.states)
    [
      Generate.counter ~bits:5;
      Generate.johnson ~bits:5;
      Generate.fifo_controller ~depth:5;
      Generate.arbiter ~clients:4;
    ]

let test_ooc_roomy_budget_stays_hot () =
  with_dir @@ fun dir ->
  let compiled = Compile.compile (Generate.counter ~bits:4) in
  let trans = Trans.build compiled in
  let r = Ooc.run ~store_dir:dir ~hot_budget:1_000_000 trans in
  Alcotest.(check bool) "exact" true r.Ooc.exact;
  Alcotest.(check int) "no migration" 0 r.Ooc.migrations;
  Alcotest.(check (float 0.0)) "16 states" 16.0 r.Ooc.states

let tests =
  ( "store",
    [
      prop_pq_sorted;
      Alcotest.test_case "pq spill + drain" `Quick test_pq_spills;
      prop_level_file_round_trip;
      prop_level_file_canonical;
      prop_level_file_truncation;
      prop_level_file_bit_flip;
      prop_stream_apply_matches_kernel;
      prop_stream_apply_bounded_memory;
      prop_stream_count_minterms;
      Alcotest.test_case "tiered round trip" `Quick test_tiered_round_trip;
      Alcotest.test_case "tiered disk full" `Quick test_tiered_disk_full;
      Alcotest.test_case "tiered constants" `Quick test_tiered_constants;
      Alcotest.test_case "ooc reach == bfs oracle" `Quick test_ooc_matches_bfs;
      Alcotest.test_case "ooc roomy budget stays hot" `Quick
        test_ooc_roomy_budget_stays_hot;
    ] )
