(* Tests for the parallel kernel: the shared (striped) unique table, the
   race-tolerant caches, and the par_* fork/join recursions.

   The domain counts exercised by the pool-based properties come from
   PAR_TEST_DOMAINS (space- or comma-separated, default "1 2 4") so the
   CI matrix can re-run the same suite at 2 and 8 domains. *)

let domain_counts =
  let parse s =
    String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) s)
    |> List.filter_map int_of_string_opt
    |> List.filter (fun d -> d >= 1)
  in
  match Option.map parse (Sys.getenv_opt "PAR_TEST_DOMAINS") with
  | Some (_ :: _ as ds) -> ds
  | Some [] | None -> [ 1; 2; 4 ]

let nvars = 6

let qtest ?(count = 100) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

(* canonical fingerprint: equal across managers iff the BDDs are equal *)
let export man f = Bdd.serialized_to_string (Bdd.export man f)

let with_pool workers fn =
  let pool = Tpool.create ~workers in
  Fun.protect ~finally:(fun () -> Tpool.shutdown pool) (fun () -> fn pool)

(* Tgen.build_bdd routed through the par_* entry points, so a random op
   tree exercises par_apply and par_ite at every internal node. *)
let rec build_par pool man = function
  | Tgen.T -> Bdd.tt man
  | Tgen.F -> Bdd.ff man
  | Tgen.V i -> Bdd.ithvar man i
  | Tgen.Not e -> Bdd.bnot man (build_par pool man e)
  | Tgen.And (a, b) ->
      Bdd.par_apply pool man `And (build_par pool man a) (build_par pool man b)
  | Tgen.Or (a, b) ->
      Bdd.par_apply pool man `Or (build_par pool man a) (build_par pool man b)
  | Tgen.Xor (a, b) ->
      Bdd.par_apply pool man `Xor (build_par pool man a) (build_par pool man b)
  | Tgen.Imp (a, b) ->
      Bdd.par_ite pool man (build_par pool man a) (build_par pool man b)
        (Bdd.tt man)
  | Tgen.Ite (a, b, c) ->
      Bdd.par_ite pool man (build_par pool man a) (build_par pool man b)
        (build_par pool man c)

(* --- par ops vs the single-domain oracle ------------------------------ *)

let prop_par_matches_oracle e =
  (* sequential oracle on a private manager *)
  let man0, f0, o = Tgen.setup ~nvars e in
  let want = export man0 f0 in
  List.for_all
    (fun d ->
      with_pool d (fun pool ->
          let man = Bdd.create ~nvars ~shared:(d > 1) () in
          let f = build_par pool man e in
          export man f = want
          && Oracle.equal (Oracle.of_bdd man nvars f) o))
    domain_counts

let prop_par_exist_and e1 e2 =
  let man0 = Bdd.create ~nvars () in
  let a0 = Tgen.build_bdd man0 e1 and b0 = Tgen.build_bdd man0 e2 in
  let vars0 = Bdd.cube man0 [ 0; 2; 4 ] in
  let want = export man0 (Bdd.and_exists man0 ~vars:vars0 a0 b0) in
  List.for_all
    (fun d ->
      with_pool d (fun pool ->
          let man = Bdd.create ~nvars ~shared:(d > 1) () in
          let a = Tgen.build_bdd man e1 and b = Tgen.build_bdd man e2 in
          let vars = Bdd.cube man [ 0; 2; 4 ] in
          export man (Bdd.par_exist_and pool man ~vars a b) = want))
    domain_counts

(* --- pool-driven reachability vs the sequential engine ---------------- *)

let test_bfs_pool () =
  let states trans pool =
    let r = Bfs.run ?pool trans in
    (r.Traversal.states, r.Traversal.reached)
  in
  let build man =
    Trans.build (Compile.compile ~man (Generate.microsequencer ~addr_bits:3 ~stack_depth:2))
  in
  let man0 = Bdd.create () in
  let s0, r0 = states (build man0) None in
  let want = export man0 r0 in
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          let man = Bdd.create ~shared:(d > 1) () in
          let s, r = states (build man) (Some pool) in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "states @ %d domains" d)
            s0 s;
          Alcotest.(check string)
            (Printf.sprintf "reached set @ %d domains" d)
            want (export man r)))
    domain_counts

(* --- stress: concurrent mk/apply on one shared manager ---------------- *)

(* Four domains hammer a single shared manager with interleaved variable
   materialization, connectives and quantification over overlapping
   variable ranges, then every result is checked against a private
   sequential manager and the manager's own bookkeeping is audited. *)
let test_shared_stress () =
  let domains = 4 and rounds = 120 and stress_vars = 12 in
  let man = Bdd.create ~shared:true () in
  (* variables are deliberately NOT pre-materialized: racing ithvar makes
     the domains contend on var_lock (grow_vars) as well as the table *)
  let work mgr k () =
    let acc = ref (Bdd.tt mgr) in
    for i = 0 to rounds - 1 do
      let v1 = (i + k) mod stress_vars
      and v2 = (i + (3 * k) + 5) mod stress_vars in
      let x = Bdd.ithvar mgr v1 and y = Bdd.ithvar mgr v2 in
      let t =
        match i mod 4 with
        | 0 -> Bdd.band mgr (Bdd.bor mgr x y) (Bdd.bnot mgr !acc)
        | 1 -> Bdd.bxor mgr !acc (Bdd.band mgr x (Bdd.bnot mgr y))
        | 2 -> Bdd.ite mgr x !acc y
        | _ -> Bdd.exists mgr ~vars:(Bdd.cube mgr [ v1 ]) (Bdd.bor mgr !acc y)
      in
      acc := t
    done;
    !acc
  in
  let spawned =
    List.init domains (fun k -> Domain.spawn (work man ((2 * k) + 1)))
  in
  let results = List.map Domain.join spawned in
  (* every domain's result must equal a sequential replay of its own
     deterministic op sequence on a private manager *)
  List.iteri
    (fun k f ->
      let man0 = Bdd.create () in
      let f0 = work man0 ((2 * k) + 1) () in
      Alcotest.(check string)
        (Printf.sprintf "domain %d result" k)
        (export man0 f0) (export man f))
    results;
  (* canonicity survived the races: rebuilding any result hits the table *)
  List.iter
    (fun f -> Alcotest.(check bool) "canonical" true (Bdd.equal f f))
    results;
  let st = Bdd.stats man in
  let v name = Option.value ~default:0 (List.assoc_opt name st) in
  Alcotest.(check bool) "unique_size <= nodes_made" true
    (v "unique_size" <= v "nodes_made");
  Alcotest.(check bool) "peak_unique >= unique_size" true
    (v "peak_unique" >= v "unique_size");
  let c = Bdd.contention man in
  Alcotest.(check bool) "cache_races <= cache_inserts" true
    (c.Bdd.cache_races <= c.Bdd.cache_inserts);
  Alcotest.(check bool) "cas_retries <= ut_locks" true
    (c.Bdd.cas_retries <= c.Bdd.ut_locks);
  Alcotest.(check bool) "stripe_waits <= ut_locks" true
    (c.Bdd.stripe_waits <= c.Bdd.ut_locks);
  Alcotest.(check bool) "counters non-negative" true
    (c.Bdd.cas_retries >= 0 && c.Bdd.stripe_waits >= 0
    && c.Bdd.cache_races >= 0 && c.Bdd.cache_probes >= 0)

(* --- guard rails ------------------------------------------------------ *)

let test_par_requires_shared () =
  with_pool 2 (fun pool ->
      let man = Bdd.create ~nvars:2 () in
      let x = Bdd.ithvar man 0 and y = Bdd.ithvar man 1 in
      match Bdd.par_apply pool man `And x y with
      | _ -> Alcotest.fail "par_apply on a private manager should raise"
      | exception Invalid_argument _ -> ())

let test_pool_size_one_inline () =
  (* a 1-worker pool must not require a shared manager: it degenerates to
     the sequential kernel on the calling domain *)
  with_pool 1 (fun pool ->
      let man = Bdd.create ~nvars:4 () in
      let x = Bdd.ithvar man 0 and y = Bdd.ithvar man 1 in
      let r = Bdd.par_apply pool man `And x y in
      Alcotest.(check bool) "same as band" true
        (Bdd.equal r (Bdd.band man x y)))

let tests =
  ( "par",
    [
      qtest "par_apply/par_ite = oracle @ PAR_TEST_DOMAINS"
        (Tgen.arbitrary_expr ~nvars ~depth:6)
        prop_par_matches_oracle;
      qtest ~count:60 "par_exist_and = and_exists @ PAR_TEST_DOMAINS"
        QCheck.(
          pair
            (Tgen.arbitrary_expr ~nvars ~depth:5)
            (Tgen.arbitrary_expr ~nvars ~depth:5))
        (fun (a, b) -> prop_par_exist_and a b);
      Alcotest.test_case "Bfs ?pool bit-identical" `Quick test_bfs_pool;
      Alcotest.test_case "4-domain shared-manager stress" `Quick
        test_shared_stress;
      Alcotest.test_case "par on private manager raises" `Quick
        test_par_requires_shared;
      Alcotest.test_case "1-worker pool inlines" `Quick
        test_pool_size_one_inline;
    ] )
