(* The shared arena's ownership story, from the outside: publish dedup
   is content-exact, views are zero-copy (physically the same node),
   refcounts move ownership across holders, the catalog pins what it
   files, and — the load-bearing property — an attach/detach storm
   across 4 concurrent domains never observes a live segment reclaimed,
   yet a quiesced arena reclaims *everything* once the last reference
   drops (no leak: a second sweep finds nothing more to free). *)

let qtest ?(count = 10) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let assoc k kvs =
  match List.assoc_opt k kvs with
  | Some v -> v
  | None -> Alcotest.failf "stats is missing %s" k

(* canonical bytes of a small function, built in a scratch manager *)
let bytes_of build =
  let man = Bdd.create ~nvars:8 () in
  Bdd.serialized_to_string (Bdd.export man (build man))

let conj_bytes i =
  bytes_of (fun m -> Bdd.band m (Bdd.ithvar m (i mod 8)) (Bdd.ithvar m ((i + 1) mod 8)))

(* --- publish dedup ------------------------------------------------------ *)

let test_publish_dedup () =
  let a = Arena.create () in
  let b1 = conj_bytes 0 and b2 = conj_bytes 2 in
  let h1 = Arena.publish_serialized a ~name:"first" b1 in
  let h1' = Arena.publish_serialized a b1 in
  Alcotest.(check int) "identical bytes dedup to one handle" h1 h1';
  Alcotest.(check (option int)) "both publishes own a reference" (Some 2)
    (Arena.refs a h1);
  let h2 = Arena.publish_serialized a b2 in
  Alcotest.(check bool) "different content gets a fresh handle" true (h1 <> h2);
  let s = Arena.stats a in
  Alcotest.(check int) "3 publish calls" 3 (assoc "arena.publishes" s);
  Alcotest.(check int) "2 unique segments" 2 (assoc "arena.published" s);
  Alcotest.(check int) "1 dedup hit" 1 (assoc "arena.hits" s);
  Alcotest.(check int) "live_segments = published - reclaimed"
    (assoc "arena.published" s - assoc "arena.reclaimed" s)
    (assoc "arena.live_segments" s);
  (* the dedup-survivor keeps the first publish's name *)
  Alcotest.(check (option string)) "name is the first publisher's"
    (Some "first") (Arena.name a h1)

let test_view_is_zero_copy () =
  (* nvars pins the canonical byte form: export embeds the manager's
     variable count and order, so the arena manager must agree with the
     scratch manager for publish_root's re-export to dedup *)
  let a = Arena.create ~nvars:8 () in
  let h = Arena.publish_serialized a (conj_bytes 1) in
  let f = Arena.view a h in
  (* hash-consing in the shared manager: two views are the same node *)
  Alcotest.(check bool) "views are physically equal" true
    (Arena.view a h == f);
  (* and publishing a root already in the arena's manager copies nothing,
     it just folds into the live segment *)
  let h' = Arena.publish_root a f in
  Alcotest.(check int) "publish_root of a viewed root dedups" h h';
  Arena.release a h'

(* --- refcount lifecycle ------------------------------------------------- *)

let test_refcount_lifecycle () =
  let a = Arena.create () in
  let h = Arena.publish_serialized a (conj_bytes 3) in
  Arena.retain a h;
  Alcotest.(check (option int)) "retain bumps" (Some 2) (Arena.refs a h);
  Arena.release a h;
  Alcotest.(check (option int)) "release drops" (Some 1) (Arena.refs a h);
  Arena.release a h;
  (* last reference gone: the segment left the registry for good *)
  Alcotest.(check (option int)) "dead handle has no refs" None (Arena.refs a h);
  Alcotest.(check int) "no live segments" 0 (Arena.live_segments a);
  (match Arena.view a h with
  | (_ : Bdd.t) -> Alcotest.fail "view resurrected a reclaimed handle"
  | exception Not_found -> ());
  (match Arena.retain a h with
  | () -> Alcotest.fail "retain resurrected a reclaimed handle"
  | exception Not_found -> ());
  (match Arena.release a h with
  | () -> Alcotest.fail "double release succeeded"
  | exception Not_found -> ());
  let s = Arena.stats a in
  Alcotest.(check int) "reclaimed <= published" (assoc "arena.published" s)
    (max (assoc "arena.published" s) (assoc "arena.reclaimed" s));
  Alcotest.(check int) "everything reclaimed" 1 (assoc "arena.reclaimed" s);
  (* republishing the same content after reclaim is a fresh segment, not
     a hit — a reclaimed segment is never resurrected *)
  let h2 = Arena.publish_serialized a (conj_bytes 3) in
  Alcotest.(check bool) "handles are never reused" true (h2 <> h);
  Alcotest.(check int) "republish is not a dedup hit"
    (assoc "arena.hits" s)
    (assoc "arena.hits" (Arena.stats a))

(* --- catalog ------------------------------------------------------------ *)

let test_catalog_pins_and_first_writer_wins () =
  let a = Arena.create () in
  let h = Arena.publish_serialized a ~name:"m.out" (conj_bytes 4) in
  Arena.catalog_put a ~key:"model-src" [ ("out", h) ];
  (* the catalog took its own pinning reference: dropping the publisher's
     reference must not reclaim the segment *)
  Arena.release a h;
  Alcotest.(check (option int)) "catalog pin keeps the segment live"
    (Some 1) (Arena.refs a h);
  (match Arena.catalog_find a ~key:"model-src" with
  | Some [ ("out", h') ] -> Alcotest.(check int) "find returns the handle" h h'
  | _ -> Alcotest.fail "catalog lookup failed");
  Alcotest.(check bool) "a catalog find counts avoided imports" true
    (assoc "arena.hits" (Arena.stats a) >= 1);
  (* first writer wins: a duplicate put under the same key is ignored *)
  let h2 = Arena.publish_serialized a (conj_bytes 5) in
  Arena.catalog_put a ~key:"model-src" [ ("out", h2) ];
  (match Arena.catalog_find a ~key:"model-src" with
  | Some [ ("out", h') ] -> Alcotest.(check int) "first entry survives" h h'
  | _ -> Alcotest.fail "catalog lookup failed");
  Alcotest.(check (option int)) "the losing put pinned nothing" (Some 1)
    (Arena.refs a h2);
  Alcotest.(check (option string)) "miss on an unknown key is None" None
    (Option.map (fun _ -> "hit") (Arena.catalog_find a ~key:"other"))

let test_catalog_claim_single_flight () =
  let a = Arena.create ~nvars:8 () in
  (* cold key: the first claimant owns the compute *)
  (match Arena.catalog_claim a ~key:"k" with
  | `Found _ -> Alcotest.fail "claim hit an empty catalog"
  | `Claimed -> ());
  (* a racing claimant must block until the owner settles, then find the
     filed entries — never claim a duplicate compute *)
  let observed = ref `Blocked in
  let waiter =
    Thread.create
      (fun () ->
        match Arena.catalog_claim a ~key:"k" with
        | `Found [ ("out", _) ] -> observed := `Found
        | `Found _ -> observed := `Wrong_entries
        | `Claimed -> observed := `Duplicate_claim)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "waiter blocks while the compute is in flight" true
    (!observed = `Blocked);
  let h = Arena.publish_serialized a (conj_bytes 6) in
  Arena.catalog_put a ~key:"k" [ ("out", h) ];
  Thread.join waiter;
  Alcotest.(check bool) "settled waiter finds the owner's entries" true
    (!observed = `Found);
  (* abort hands the compute over: the blocked claimant wakes `Claimed` *)
  (match Arena.catalog_claim a ~key:"k2" with
  | `Found _ -> Alcotest.fail "claim hit an empty catalog"
  | `Claimed -> ());
  let taken_over = ref false in
  let waiter2 =
    Thread.create
      (fun () ->
        match Arena.catalog_claim a ~key:"k2" with
        | `Claimed -> taken_over := true
        | `Found _ -> ())
      ()
  in
  Thread.delay 0.02;
  Arena.catalog_abort a ~key:"k2";
  Thread.join waiter2;
  Alcotest.(check bool) "abort wakes a waiter as the new owner" true
    !taken_over

(* --- the 4-domain storm ------------------------------------------------- *)

(* Each domain retains/views/releases against a fixed set of published
   segments while the others do the same.  The arena holds one base
   reference per segment throughout, so every view inside the storm MUST
   succeed — a Not_found would mean a live segment was reclaimed out
   from under a reader.  After the storm quiesces, dropping the base
   references empties the registry and [reclaim] sweeps the shared
   table; a second sweep freeing nothing is the no-leak certificate. *)
let storm_prop (seed, ops) =
  let a = Arena.create ~nvars:8 () in
  let handles =
    Array.init 5 (fun i ->
        Arena.publish_serialized a ~name:(Printf.sprintf "seg%d" i)
          (conj_bytes i))
  in
  let domains = 4 in
  let failures = Atomic.make 0 in
  let spawn d =
    Domain.spawn (fun () ->
        let state = ref (((seed * 31) + d + 1) land 0x3FFFFFFF) in
        let rand bound =
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          !state mod bound
        in
        for _ = 1 to ops do
          let h = handles.(rand (Array.length handles)) in
          match
            Arena.retain a h;
            let f = Arena.view a h in
            ignore (Bdd.size f);
            Arena.release a h
          with
          | () -> ()
          | exception _ -> Atomic.incr failures
        done)
  in
  let ds = List.init domains spawn in
  List.iter Domain.join ds;
  let live_ok =
    Atomic.get failures = 0
    && Arena.live_segments a = Array.length handles
    && Arena.live_refs a = Array.length handles
  in
  (* quiesce: drop the base references, then sweep *)
  Array.iter (fun h -> Arena.release a h) handles;
  let s = Arena.stats a in
  let registry_ok =
    Arena.live_segments a = 0
    && Arena.live_refs a = 0
    && List.assoc "arena.reclaimed" s = List.assoc "arena.published" s
    && List.assoc "arena.reclaimed_bytes" s
       = List.assoc "arena.published_bytes" s
  in
  let swept = Arena.reclaim a () in
  let no_leak = swept > 0 && Arena.reclaim a () = 0 in
  live_ok && registry_ok && no_leak

let storm =
  qtest ~count:10
    "4-domain attach/detach storm: live segments survive, quiesce reclaims all"
    QCheck.(
      make
        ~print:(fun (seed, ops) -> Printf.sprintf "seed=%d ops=%d" seed ops)
        Gen.(pair (int_bound 10_000) (int_range 50 300)))
    storm_prop

let tests =
  ( "arena",
    [
      Alcotest.test_case "publish dedups identical content" `Quick
        test_publish_dedup;
      Alcotest.test_case "view is zero-copy (same hash-consed node)" `Quick
        test_view_is_zero_copy;
      Alcotest.test_case "refcounts: retain/release/dead-handle discipline"
        `Quick test_refcount_lifecycle;
      Alcotest.test_case "catalog pins its entries; first writer wins" `Quick
        test_catalog_pins_and_first_writer_wins;
      Alcotest.test_case "catalog claims are single-flight" `Quick
        test_catalog_claim_single_flight;
      storm;
    ] )
