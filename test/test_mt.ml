(* The Mt subsystem: work-stealing runner semantics (ordering, budgets,
   crash isolation), cross-manager transfer of whole transition relations,
   and determinism of the parallel harness tables. *)

let test_jobs = 4

let test_result_order () =
  (* many quick jobs, results must come back in submission order no matter
     how the deques interleave *)
  let jobs =
    List.init 32 (fun i ->
        Mt.Runner.job ~label:(string_of_int i) (fun man ->
            ignore (Bdd.ithvar man (i mod 7));
            i))
  in
  let results = Mt.Runner.run ~jobs:test_jobs jobs in
  Alcotest.(check (list int))
    "submission order"
    (List.init 32 Fun.id)
    (List.map
       (fun r -> match Mt.Runner.value r with Some i -> i | None -> -1)
       results)

let test_over_budget_isolated () =
  (* the middle job blows a tiny node budget; its siblings must finish
     untouched because every job owns a private manager *)
  let hog =
    Mt.Runner.job
      ~budget:{ Mt.Runner.no_budget with node_budget = Some 50 }
      ~label:"hog"
      (fun man -> Bdd.size (Bdd.conj man (List.init 200 (Bdd.ithvar man))))
  in
  let ok i =
    Mt.Runner.job ~label:(Printf.sprintf "ok%d" i) (fun man ->
        Bdd.size (Bdd.conj man (List.init 20 (Bdd.ithvar man))))
  in
  match
    List.map
      (fun (r : _ Mt.Runner.result) -> r.Mt.Runner.outcome)
      (Mt.Runner.run ~jobs:test_jobs [ ok 0; hog; ok 1; ok 2 ])
  with
  | [ Done 20; Over_budget; Done 20; Done 20 ] -> ()
  | outcomes ->
      Alcotest.failf "unexpected outcomes: %s"
        (String.concat "; "
           (List.map
              (Format.asprintf "%a" Mt.Runner.pp_outcome)
              outcomes))

let test_deadline () =
  (* a job that makes fresh nodes forever: the tick hook must convert the
     deadline into Timeout while a sibling completes *)
  let endless =
    Mt.Runner.job
      ~budget:{ Mt.Runner.no_budget with deadline = Some 0.05 }
      ~label:"endless"
      (fun man ->
        let f = ref (Bdd.tt man) in
        let i = ref 0 in
        while true do
          f := Bdd.bxor man !f (Bdd.ithvar man !i);
          incr i
        done;
        Bdd.size !f)
  in
  let ok = Mt.Runner.job ~label:"ok" (fun man -> Bdd.size (Bdd.ithvar man 0)) in
  match
    List.map
      (fun (r : _ Mt.Runner.result) -> r.Mt.Runner.outcome)
      (Mt.Runner.run ~jobs:2 [ endless; ok ])
  with
  | [ Timeout; Done 1 ] -> ()
  | outcomes ->
      Alcotest.failf "unexpected outcomes: %s"
        (String.concat "; "
           (List.map
              (Format.asprintf "%a" Mt.Runner.pp_outcome)
              outcomes))

let test_crash_isolated () =
  let results =
    Mt.Runner.run ~jobs:test_jobs
      [
        Mt.Runner.job ~label:"boom" (fun _ -> failwith "boom");
        Mt.Runner.job ~label:"fine" (fun man -> Bdd.size (Bdd.ithvar man 2));
      ]
  in
  match List.map (fun (r : _ Mt.Runner.result) -> r.Mt.Runner.outcome) results with
  | [ Crashed { exn; _ }; Done 1 ] ->
      Alcotest.(check bool)
        "message mentions the exception" true
        (String.length exn > 0)
  | _ -> Alcotest.fail "expected [Crashed _; Done 1]"

let test_report_counters () =
  match
    Mt.Runner.run ~jobs:1
      [
        Mt.Runner.job ~label:"count" (fun man ->
            let f = Bdd.conj man (List.init 10 (Bdd.ithvar man)) in
            (* recompute to force cache hits *)
            ignore (Bdd.band man f f);
            Bdd.size f);
      ]
  with
  | [ { Mt.Runner.outcome = Done 10; report } ] ->
      Alcotest.(check string) "label" "count" report.Mt.Runner.label;
      Alcotest.(check bool) "wall >= 0" true (report.Mt.Runner.wall >= 0.);
      Alcotest.(check bool)
        "peak covers the conjunction" true
        (report.Mt.Runner.peak_nodes >= 10);
      Alcotest.(check bool)
        "nodes were made" true
        (report.Mt.Runner.nodes_made >= 10);
      Alcotest.(check bool)
        "cache was exercised" true
        (report.Mt.Runner.cache_hits + report.Mt.Runner.cache_misses > 0)
  | _ -> Alcotest.fail "unexpected result"

(* --- determinism of the parallel tables ------------------------------- *)

let small_pool () =
  let pool =
    Pool.entries_of_circuit ~min_nodes:150
      (Generate.random_netlist ~inputs:14 ~gates:60 ~outputs:4 ~seed:7)
  in
  Alcotest.(check bool) "pool is non-empty" false (pool = []);
  pool

let methods : (string * (Bdd.man -> Bdd.t -> Bdd.t)) list =
  [ ("F", fun _ f -> f); ("RUA", fun man f -> Remap.approximate man f) ]

let render_approx pool jobs =
  Tables.render ~headers:Scoreboard.approx_headers
    ~rows:(Scoreboard.approx_rows (Scoreboard.approx_table ~jobs pool methods))

let test_table_determinism () =
  let pool = small_pool () in
  let sequential =
    Tables.render ~headers:Scoreboard.approx_headers
      ~rows:(Scoreboard.approx_rows (Scoreboard.approx_table pool methods))
  in
  Alcotest.(check string)
    "jobs:1 matches sequential" sequential (render_approx pool 1);
  Alcotest.(check string)
    "jobs:4 matches sequential" sequential (render_approx pool 4)

let test_pool_determinism () =
  let label (e : Pool.entry) = (e.Pool.label, Bdd.size e.Pool.f) in
  let circuits =
    Some
      [
        Generate.microsequencer ~addr_bits:3 ~stack_depth:2;
        Generate.shifter_datapath ~width:6;
      ]
  in
  Alcotest.(check (list (pair string int)))
    "same entries for jobs:1 and jobs:3"
    (List.map label (Pool.build ~min_nodes:100 ~circuits ~jobs:1 ()))
    (List.map label (Pool.build ~min_nodes:100 ~circuits ~jobs:3 ()))

(* --- cross-manager transfer of a transition relation ------------------ *)

let test_trans_transfer () =
  let trans =
    Trans.build (Compile.compile (Generate.microsequencer ~addr_bits:3 ~stack_depth:2))
  in
  let reference = Bfs.run trans in
  let x = Trans.export trans in
  let results =
    Mt.Runner.run ~jobs:2
      (List.init 2 (fun i ->
           Mt.Runner.job ~label:(Printf.sprintf "bfs%d" i) (fun man ->
               let r = Bfs.run (Trans.import man x) in
               (r.Traversal.exact, r.Traversal.states, r.Traversal.iterations))))
  in
  List.iter
    (fun r ->
      match Mt.Runner.value r with
      | Some (exact, states, iters) ->
          Alcotest.(check bool) "exact" reference.Traversal.exact exact;
          Alcotest.(check (float 0.0)) "states" reference.Traversal.states states;
          Alcotest.(check int) "iterations" reference.Traversal.iterations iters
      | None -> Alcotest.fail "transfer job failed")
    results

let test_copy_preserves_sharing () =
  let src = Bdd.create ~nvars:10 () in
  let f = Bdd.conj src (List.init 8 (Bdd.ithvar src)) in
  let g = Bdd.bor src f (Bdd.nithvar src 9) in
  let dst = Bdd.create () in
  match Mt.Transfer.copy_list ~src ~dst [ f; g ] with
  | [ f'; g' ] ->
      Alcotest.(check int)
        "shared size preserved"
        (Bdd.shared_size [ f; g ])
        (Bdd.shared_size [ f'; g' ]);
      Alcotest.(check bool)
        "copy agrees with copy_list" true
        (Bdd.equal f' (Mt.Transfer.copy ~src ~dst f))
  | _ -> Alcotest.fail "copy_list arity"

let tests =
  ( "mt",
    [
      Alcotest.test_case "result order" `Quick test_result_order;
      Alcotest.test_case "over-budget job isolated" `Quick
        test_over_budget_isolated;
      Alcotest.test_case "deadline -> Timeout" `Quick test_deadline;
      Alcotest.test_case "crash isolated" `Quick test_crash_isolated;
      Alcotest.test_case "report counters" `Quick test_report_counters;
      Alcotest.test_case "table determinism across jobs" `Quick
        test_table_determinism;
      Alcotest.test_case "pool determinism across jobs" `Quick
        test_pool_determinism;
      Alcotest.test_case "transition-relation transfer" `Quick
        test_trans_transfer;
      Alcotest.test_case "copy_list preserves sharing" `Quick
        test_copy_preserves_sharing;
    ] )
