(* Resilience layer: checksummed crash-safe checkpoints (corruption can
   only ever surface as Bdd.Corrupt, never as a wrong BDD or a crash),
   the degradation ladder, fault-injection config, and supervised runner
   retries. *)

let qtest ?(count = 200) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let nvars = 6

let check_corrupt name fn =
  match fn () with
  | exception Bdd.Corrupt _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Bdd.Corrupt, got %s" name
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Bdd.Corrupt, accepted the input" name

let with_tmp f =
  let path = Filename.temp_file "resil" ".bdd" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* --- checkpoint format ------------------------------------------------ *)

let test_crc32 () =
  (* the standard test vector of the IEEE 802.3 polynomial *)
  Alcotest.(check int)
    "crc32(123456789)" 0xCBF43926
    (Resil.Checkpoint.crc32 "123456789")

let test_checkpoint_round_trip () =
  with_tmp @@ fun path ->
  let man = Bdd.create ~nvars:8 () in
  let f =
    Bdd.bxor man
      (Bdd.conj man (List.init 4 (Bdd.ithvar man)))
      (Bdd.disj man (List.init 8 (Bdd.ithvar man)))
  in
  Resil.Checkpoint.save path (Bdd.export man f);
  let g = Bdd.import man (Resil.Checkpoint.load path) in
  Alcotest.(check bool) "round trip" true (Bdd.equal f g);
  (* legacy trailer-less files written by Bdd.save still load *)
  Bdd.save path (Bdd.export man f);
  let g = Bdd.import man (Resil.Checkpoint.load path) in
  Alcotest.(check bool) "legacy round trip" true (Bdd.equal f g)

let test_atomic_overwrite () =
  with_tmp @@ fun path ->
  let man = Bdd.create ~nvars:4 () in
  let f = Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 3) in
  Resil.Checkpoint.save path (Bdd.export man f);
  let g = Bdd.bor man f (Bdd.ithvar man 1) in
  Resil.Checkpoint.save path (Bdd.export man g);
  Alcotest.(check bool)
    "overwrite wins" true
    (Bdd.equal g (Bdd.import man (Resil.Checkpoint.load path)));
  (* no temp litter left beside the target *)
  let dir = Filename.dirname path and base = Filename.basename path in
  let stray =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun n ->
           n <> base
           && String.length n > String.length base
           && String.sub n 0 (String.length base) = base)
  in
  Alcotest.(check (list string)) "no stray temp files" [] stray

let test_reach_state_round_trip () =
  with_tmp @@ fun path ->
  let man = Bdd.create ~nvars:6 () in
  let reached = Bdd.disj man (List.init 5 (Bdd.ithvar man)) in
  let frontier = Bdd.band man reached (Bdd.nithvar man 5) in
  Resil.Checkpoint.save_reach path
    {
      Resil.Checkpoint.iterations = 42;
      images = 43;
      payload = Bdd.export_list man [ reached; frontier ];
    };
  let st = Resil.Checkpoint.load_reach path in
  Alcotest.(check int) "iterations" 42 st.Resil.Checkpoint.iterations;
  Alcotest.(check int) "images" 43 st.Resil.Checkpoint.images;
  (match Bdd.import_list man st.Resil.Checkpoint.payload with
  | [ r; f ] ->
      Alcotest.(check bool) "reached" true (Bdd.equal r reached);
      Alcotest.(check bool) "frontier" true (Bdd.equal f frontier)
  | _ -> Alcotest.fail "roots arity");
  (* the two checkpoint kinds reject each other with a clear message *)
  check_corrupt "load of a reach checkpoint" (fun () ->
      Resil.Checkpoint.load path);
  Resil.Checkpoint.save path (Bdd.export man reached);
  check_corrupt "load_reach of a plain checkpoint" (fun () ->
      Resil.Checkpoint.load_reach path)

(* Truncating a checkpoint anywhere must either raise Corrupt or (at the
   single cut that removes exactly the whole trailer, leaving a valid
   legacy file) still decode the identical BDD — never a different one. *)
let prop_truncation_detected =
  qtest ~count:100 "checkpoint truncation -> Corrupt or identical"
    QCheck.(pair (Tgen.arbitrary_expr ~nvars ~depth:6) (float_range 0. 1.))
    (fun (e, frac) ->
      let man, f, _ = Tgen.setup ~nvars e in
      with_tmp @@ fun path ->
      Resil.Checkpoint.save path (Bdd.export man f);
      let data =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let n = String.length data in
      let cut = min (n - 1) (int_of_float (frac *. float_of_int n)) in
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 cut);
      close_out oc;
      match Resil.Checkpoint.load path with
      | exception Bdd.Corrupt _ -> true
      | s -> cut = n - 16 && Bdd.equal f (Bdd.import man s))

(* Every single-bit flip anywhere in a checkpoint file must raise Corrupt
   — the "never a wrong BDD" guarantee the raw format cannot give. *)
let prop_bit_flip_detected =
  qtest ~count:200 "checkpoint bit flip -> Corrupt"
    QCheck.(pair (Tgen.arbitrary_expr ~nvars ~depth:6) (pair small_nat small_nat))
    (fun (e, (byte_seed, bit)) ->
      let man, f, _ = Tgen.setup ~nvars e in
      with_tmp @@ fun path ->
      Resil.Checkpoint.save path (Bdd.export man f);
      let data =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let pos = byte_seed mod String.length data in
      let flipped = Bytes.of_string data in
      Bytes.set flipped pos
        (Char.chr (Char.code data.[pos] lxor (1 lsl (bit mod 8))));
      let oc = open_out_bin path in
      output_bytes oc flipped;
      close_out oc;
      match Resil.Checkpoint.load path with
      | exception Bdd.Corrupt _ -> true
      | _ -> false)

(* The raw in-memory encoding has no checksum, so a mutation may parse —
   but it must never escape as anything other than Corrupt or a
   well-formed serialized record that import accepts. *)
let prop_raw_mutation_never_crashes =
  qtest ~count:500 "raw BDD1 mutation -> Corrupt or well-formed"
    QCheck.(
      pair (Tgen.arbitrary_expr ~nvars ~depth:6) (pair small_nat small_nat))
    (fun (e, (byte_seed, bit)) ->
      let man, f, _ = Tgen.setup ~nvars e in
      let good = Bdd.serialized_to_string (Bdd.export man f) in
      let pos = byte_seed mod String.length good in
      let bad = Bytes.of_string good in
      Bytes.set bad pos
        (Char.chr (Char.code good.[pos] lxor (1 lsl (bit mod 8))));
      match Bdd.serialized_of_string (Bytes.to_string bad) with
      | exception Bdd.Corrupt _ -> true
      | s -> (
          (* a parse that survives must also import cleanly or be caught *)
          let man2 = Bdd.create () in
          match Bdd.import_list man2 s with
          | exception Bdd.Corrupt _ -> true
          | _ -> true))

let test_order_not_permutation () =
  let man = Bdd.create () in
  check_corrupt "duplicate order entry" (fun () ->
      Bdd.import man
        {
          Bdd.s_nvars = 2;
          s_order = [| 0; 0 |];
          s_nodes = [| (0, 1, 0) |];
          s_roots = [| 2 |];
        });
  check_corrupt "order entry out of range" (fun () ->
      Bdd.import man
        {
          Bdd.s_nvars = 2;
          s_order = [| 0; 5 |];
          s_nodes = [| (0, 1, 0) |];
          s_roots = [| 2 |];
        })

(* --- degradation ladder ----------------------------------------------- *)

let test_degrade_ladder () =
  let man = Bdd.create ~nvars:8 () in
  let frontier = Bdd.disj man (List.init 8 (Bdd.ithvar man)) in
  let reached = Bdd.ff man in
  let deg = Resil.Degrade.create () in
  let budget = Bdd.size frontier - 1 in
  (* a compute that "blows the budget" on anything bigger than [budget]
     nodes stands in for the kernel's Node_limit *)
  let compute g = if Bdd.size g > budget then raise Bdd.Node_limit else g in
  let v, expanded, leftover =
    Resil.Degrade.image deg man ~roots:(fun () -> [ frontier ]) ~reached
      ~compute frontier
  in
  Alcotest.(check bool) "value is the expanded set" true (Bdd.equal v expanded);
  Alcotest.(check bool)
    "expanded under budget" true
    (Bdd.size expanded <= budget);
  Alcotest.(check bool)
    "expanded subset of frontier" true
    (Bdd.leq man expanded frontier);
  Alcotest.(check bool)
    "leftover = frontier minus expanded" true
    (Bdd.equal leftover (Bdd.bdiff man frontier expanded));
  Alcotest.(check bool) "not empty" false (Bdd.is_false expanded);
  Alcotest.(check int) "one degraded step" 1
    (Resil.Degrade.steps_approximated deg);
  (match Resil.Degrade.certificate ~exact:false deg with
  | Resil.Degrade.Degraded { steps_approximated = 1; exhausted = false; _ } ->
      ()
  | c -> Alcotest.failf "unexpected certificate %a" Resil.Degrade.pp_cert c);
  Alcotest.(check bool)
    "exact run certifies Exact" true
    (Resil.Degrade.certificate ~exact:true deg = Resil.Degrade.Exact)

let test_degrade_exhausted () =
  let man = Bdd.create ~nvars:4 () in
  let frontier = Bdd.disj man (List.init 4 (Bdd.ithvar man)) in
  let deg = Resil.Degrade.create () in
  (* nothing fits: even the single-cube rung must fail *)
  let compute _ = raise Bdd.Node_limit in
  (match
     Resil.Degrade.image deg man ~roots:(fun () -> [ frontier ])
       ~reached:(Bdd.ff man) ~compute frontier
   with
  | exception Resil.Degrade.Exhausted -> ()
  | _ -> Alcotest.fail "expected Exhausted");
  match Resil.Degrade.certificate ~exact:false deg with
  | Resil.Degrade.Degraded { exhausted = true; _ } -> ()
  | c -> Alcotest.failf "unexpected certificate %a" Resil.Degrade.pp_cert c

(* --- fault configuration ---------------------------------------------- *)

let test_fault_config () =
  (match Resil.Fault.config_of_string "seed=42,node_limit=0.5,job_crash=1" with
  | Ok c ->
      Alcotest.(check int) "seed" 42 c.Resil.Fault.seed;
      Alcotest.(check (float 0.)) "node_limit" 0.5 c.Resil.Fault.p_node_limit;
      Alcotest.(check (float 0.)) "cache_wipe" 0. c.Resil.Fault.p_cache_wipe;
      Alcotest.(check (float 0.)) "job_crash" 1. c.Resil.Fault.p_job_crash;
      (* round-trips through the printer *)
      Alcotest.(check bool)
        "config round trip" true
        (Resil.Fault.config_of_string (Resil.Fault.config_to_string c) = Ok c)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Resil.Fault.config_of_string "seed=xyz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage seed accepted");
  match Resil.Fault.config_of_string "p_typo=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted"

let test_fault_deterministic () =
  let config =
    { Resil.Fault.disabled with seed = 7; p_node_limit = 0.5; p_cache_wipe = 0.3 }
  in
  let observe () =
    let man = Bdd.create ~nvars:10 () in
    Resil.Fault.attach ~config man;
    let log = ref [] in
    (* the same workload against the same seed must inject identically *)
    (try
       for i = 0 to 9 do
         match Bdd.conj man (List.init 10 (Bdd.ithvar man)) with
         | _ -> log := `Ok i :: !log
         | exception Bdd.Node_limit ->
             log := `Limit i :: !log;
             Bdd.clear_caches man
       done
     with Resil.Fault.Injected_abort -> log := `Abort :: !log);
    !log
  in
  Alcotest.(check bool) "same seed, same faults" true (observe () = observe ())

(* --- supervised retries ----------------------------------------------- *)

let fast_retry attempts =
  {
    Mt.Runner.max_attempts = attempts;
    backoff = 0.001;
    backoff_max = 0.002;
    jitter = 0.5;
  }

let test_retry_flaky_job () =
  let tries = Atomic.make 0 in
  let results =
    Mt.Runner.run ~jobs:1 ~retry:(fast_retry 3)
      [
        Mt.Runner.job ~label:"flaky" (fun man ->
            if Atomic.fetch_and_add tries 1 < 2 then failwith "flaky";
            Bdd.size (Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 1)));
      ]
  in
  match results with
  | [ { outcome = Done 2; report } ] ->
      Alcotest.(check int) "three attempts" 3 report.Mt.Runner.attempts;
      Alcotest.(check int) "work ran three times" 3 (Atomic.get tries)
  | [ { outcome; _ } ] ->
      Alcotest.failf "expected Done after retries, got %a" Mt.Runner.pp_outcome
        outcome
  | _ -> Alcotest.fail "arity"

let test_retry_quarantine () =
  let results =
    Mt.Runner.run ~jobs:1 ~retry:(fast_retry 3)
      [ Mt.Runner.job ~label:"poison" (fun _ -> failwith "always") ]
  in
  match results with
  | [ { outcome = Quarantined { attempts = 3; last = Crashed { exn; _ } }; _ } ]
    ->
      Alcotest.(check bool)
        "exception name preserved" true
        (String.length exn > 0
        && String.length exn >= 6
        && (let found = ref false in
            for i = 0 to String.length exn - 6 do
              if String.sub exn i 6 = "always" then found := true
            done;
            !found))
  | [ { outcome; _ } ] ->
      Alcotest.failf "expected quarantine, got %a" Mt.Runner.pp_outcome outcome
  | _ -> Alcotest.fail "arity"

let test_retry_over_budget () =
  let results =
    Mt.Runner.run ~jobs:1 ~retry:(fast_retry 2)
      [
        Mt.Runner.job
          ~budget:{ Mt.Runner.no_budget with node_budget = Some 10 }
          ~label:"hog"
          (fun man -> Bdd.size (Bdd.conj man (List.init 24 (Bdd.ithvar man))));
      ]
  in
  match results with
  | [ { outcome = Quarantined { attempts = 2; last = Over_budget }; _ } ] -> ()
  | [ { outcome; _ } ] ->
      Alcotest.failf "expected quarantined over-budget, got %a"
        Mt.Runner.pp_outcome outcome
  | _ -> Alcotest.fail "arity"

let test_no_retry_unchanged () =
  (* without a policy the historic single-attempt behaviour holds *)
  let results =
    Mt.Runner.run ~jobs:1
      [ Mt.Runner.job ~label:"boom" (fun _ -> failwith "boom") ]
  in
  match results with
  | [ { outcome = Crashed _; report } ] ->
      Alcotest.(check int) "one attempt" 1 report.Mt.Runner.attempts
  | _ -> Alcotest.fail "expected a plain crash"

let test_runner_fault_dispatch () =
  let config = { Resil.Fault.disabled with seed = 3; p_job_crash = 1.0 } in
  Resil.Fault.arm (Some config);
  Fun.protect ~finally:(fun () -> Resil.Fault.arm None) @@ fun () ->
  let results =
    Mt.Runner.run ~jobs:1 ~retry:(fast_retry 2)
      [ Mt.Runner.job ~label:"doomed" (fun man -> Bdd.size (Bdd.tt man)) ]
  in
  match results with
  | [ { outcome = Quarantined { last = Crashed { exn; _ }; _ }; _ } ] ->
      Alcotest.(check bool)
        "injected abort named" true
        (String.length exn > 0)
  | [ { outcome; _ } ] ->
      Alcotest.failf "expected injected quarantine, got %a"
        Mt.Runner.pp_outcome outcome
  | _ -> Alcotest.fail "arity"

let tests =
  ( "resil",
    [
      Alcotest.test_case "crc32 vector" `Quick test_crc32;
      Alcotest.test_case "checkpoint round trip" `Quick
        test_checkpoint_round_trip;
      Alcotest.test_case "atomic overwrite" `Quick test_atomic_overwrite;
      Alcotest.test_case "reach state round trip" `Quick
        test_reach_state_round_trip;
      prop_truncation_detected;
      prop_bit_flip_detected;
      prop_raw_mutation_never_crashes;
      Alcotest.test_case "order not a permutation" `Quick
        test_order_not_permutation;
      Alcotest.test_case "degrade ladder" `Quick test_degrade_ladder;
      Alcotest.test_case "degrade exhausted" `Quick test_degrade_exhausted;
      Alcotest.test_case "fault config" `Quick test_fault_config;
      Alcotest.test_case "fault determinism" `Quick test_fault_deterministic;
      Alcotest.test_case "retry flaky job" `Quick test_retry_flaky_job;
      Alcotest.test_case "retry quarantine" `Quick test_retry_quarantine;
      Alcotest.test_case "retry over budget" `Quick test_retry_over_budget;
      Alcotest.test_case "no retry unchanged" `Quick test_no_retry_unchanged;
      Alcotest.test_case "runner fault dispatch" `Quick
        test_runner_fault_dispatch;
    ] )
