(* Tests for the experiment harness: statistics, table rendering, pools and
   scoreboards. *)

let qtest ?(count = 200) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_geometric_mean () =
  Alcotest.(check (float 1e-9)) "gm [2;8]" 4.0 (Stats.geometric_mean [ 2.; 8. ]);
  Alcotest.(check (float 1e-9)) "gm [5]" 5.0 (Stats.geometric_mean [ 5. ]);
  Alcotest.(check bool) "gm [] nan" true
    (Float.is_nan (Stats.geometric_mean []));
  (* zero entries are clamped, not collapsing the mean to 0 *)
  Alcotest.(check bool) "gm with 0 finite" true
    (Stats.geometric_mean [ 0.; 4. ] >= 0.)

let test_means () =
  Alcotest.(check (float 1e-9)) "am" 3.0 (Stats.arithmetic_mean [ 1.; 2.; 6. ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [ 6.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 1.5 (Stats.median [ 2.; 1. ])

let test_wins_and_ties () =
  (* three methods over four instances, higher is better *)
  let better a b = a >= b -. 1e-12 in
  let scores =
    [
      [| 3.; 1.; 2. |];
      (* m0 wins alone *)
      [| 5.; 5.; 1. |];
      (* m0 and m1 tie *)
      [| 0.; 2.; 2. |];
      (* m1 and m2 tie *)
      [| 1.; 9.; 2. |];
      (* m1 wins alone *)
    ]
  in
  let wt = Stats.wins_and_ties ~better scores in
  Alcotest.(check (list (pair int int)))
    "wins/ties"
    [ (1, 1); (1, 2); (0, 1) ]
    (Array.to_list wt)

let prop_geometric_mean_bounds =
  qtest "geometric mean lies between min and max"
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.1 1000.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let gm = Stats.geometric_mean xs in
      let lo = List.fold_left min infinity xs
      and hi = List.fold_left max neg_infinity xs in
      gm >= lo -. 1e-6 && gm <= hi +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Tables                                                             *)
(* ------------------------------------------------------------------ *)

let test_render () =
  let s =
    Tables.render ~headers:[ "a"; "bb" ] ~rows:[ [ "xxx"; "y" ]; [ "1"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  (* all non-empty lines align to the same width *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_formatters () =
  Alcotest.(check string) "f1" "12.3" (Tables.f1 12.34);
  Alcotest.(check string) "f1 nan" "-" (Tables.f1 nan);
  Alcotest.(check string) "sci" "1.50e+04" (Tables.sci 15000.);
  Alcotest.(check string) "secs" "1.50" (Tables.secs 1.5)

(* ------------------------------------------------------------------ *)
(* Pool and scoreboards                                                *)
(* ------------------------------------------------------------------ *)

let small_pool () =
  Pool.entries_of_circuit ~min_nodes:30
    (Generate.random_netlist ~inputs:10 ~gates:60 ~outputs:4 ~seed:77)
  @ Pool.entries_of_circuit ~min_nodes:30
      (Generate.microsequencer ~addr_bits:3 ~stack_depth:2)

let test_pool_filter () =
  let pool = small_pool () in
  Alcotest.(check bool) "nonempty" true (pool <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) (e.Pool.label ^ " min size") true
        (Bdd.size e.Pool.f >= 30))
    pool;
  (* describe mentions the count *)
  let d = Pool.describe pool in
  Alcotest.(check bool) "describe" true
    (String.length d > 0
    && String.sub d 0 (String.index d ' ')
       = string_of_int (List.length pool))

let test_approx_scoreboard () =
  let pool = small_pool () in
  let methods =
    [ ("F", fun _ f -> f); ("RUA", fun man f -> Remap.approximate man f) ]
  in
  match Scoreboard.approx_table pool methods with
  | [ frow; rrow ] ->
      (* RUA is safe, so its mean density must be at least F's *)
      Alcotest.(check bool) "density >= F" true
        (rrow.Scoreboard.density >= frow.Scoreboard.density -. 1e-9);
      Alcotest.(check bool) "nodes <= F" true
        (rrow.Scoreboard.nodes <= frow.Scoreboard.nodes +. 1e-9);
      (* wins + ties cannot exceed the instance count *)
      let n = List.length pool in
      Alcotest.(check bool) "bounded" true
        (frow.Scoreboard.wins + frow.Scoreboard.ties <= n
        && rrow.Scoreboard.wins + rrow.Scoreboard.ties <= n);
      (* rows render, one cell per header *)
      Alcotest.(check int) "row cells"
        (List.length Scoreboard.approx_headers)
        (List.length (List.hd (Scoreboard.approx_rows [ frow ])))
  | _ -> Alcotest.fail "expected two rows"

let test_decomp_scoreboard () =
  let pool = small_pool () in
  let methods =
    [
      ("Cofactor", fun man f -> Decomp.conj_cofactor man f);
      ("Band", fun man f -> Decomp_points.band man f);
    ]
  in
  match Scoreboard.decomp_table pool methods with
  | [ c; b ] ->
      Alcotest.(check bool) "positive sizes" true
        (c.Scoreboard.shared > 0. && b.Scoreboard.shared > 0.);
      let n = List.length pool in
      Alcotest.(check bool) "bounded" true
        (c.Scoreboard.dwins + c.Scoreboard.dties <= n
        && b.Scoreboard.dwins + b.Scoreboard.dties <= n)
  | _ -> Alcotest.fail "expected two rows"

let tests =
  ( "harness",
    [
      Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
      Alcotest.test_case "means and median" `Quick test_means;
      Alcotest.test_case "wins and ties" `Quick test_wins_and_ties;
      prop_geometric_mean_bounds;
      Alcotest.test_case "table render" `Quick test_render;
      Alcotest.test_case "formatters" `Quick test_formatters;
      Alcotest.test_case "pool filter" `Quick test_pool_filter;
      Alcotest.test_case "approx scoreboard" `Quick test_approx_scoreboard;
      Alcotest.test_case "decomp scoreboard" `Quick test_decomp_scoreboard;
    ] )
