(* In-process integration tests for the serve layer: a real Server.t on a
   loopback TCP socket, real Client connections, and oracle checks in a
   local manager.

   The load-bearing properties:
   - handle namespaces are per-session (two sessions' handle 1 are
     different BDDs, and one session's handles do not exist in another);
   - a Degraded certificate is honest: the server's BDD is a subset of
     the exact answer computed by a local oracle without budgets;
   - admission control rejects explicitly (exactly the overflowing
     requests get Overloaded, nothing hangs) — made deterministic by
     parking the single worker on a gate via the on_dispatch test hook;
   - compile + reach round-trips a sequential model with an exact state
     count;
   - drain is graceful and idempotent. *)

let with_server cfg f =
  let t = Serve.Server.start { cfg with Serve.Server.bind = Serve.Server.Tcp 0 } in
  Fun.protect ~finally:(fun () -> Serve.Server.drain t) (fun () -> f t)

let connect t = Serve.Client.connect_sockaddr (Serve.Server.address t)

let with_client t f =
  let c = connect t in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let fetch_into man c handle =
  Bdd.import man (Bdd.serialized_of_string (Serve.Client.fetch c handle))

(* --- session isolation ------------------------------------------------- *)

let test_session_isolation () =
  with_server Serve.Server.default_config (fun t ->
      with_client t (fun c1 ->
          with_client t (fun c2 ->
              let h1 = Serve.Client.lit c1 0 in
              let h2 = Serve.Client.lit c2 1 in
              (* both sessions hand out the same first handle id for
                 different functions: the namespaces are disjoint *)
              Alcotest.(check int) "both sessions start at handle 1" h1 h2;
              let man = Bdd.create ~nvars:2 () in
              let f1 = fetch_into man c1 h1 in
              let f2 = fetch_into man c2 h2 in
              Alcotest.(check bool)
                "session 1's handle is x0" true
                (Bdd.equal f1 (Bdd.ithvar man 0));
              Alcotest.(check bool)
                "session 2's handle is x1" true
                (Bdd.equal f2 (Bdd.ithvar man 1));
              (* a handle that only exists in session 1 is unknown in 2 *)
              ignore (Serve.Client.lit c1 2);
              match Serve.Client.call c2 (Serve.Proto.Fetch { handle = 2 }) with
              | Serve.Proto.Error _ -> ()
              | r ->
                  Alcotest.failf "expected Error, got %a" Serve.Proto.pp_reply r)))

(* --- degradation on the wire ------------------------------------------- *)

(* Build, over the wire, the classic bad-order function
   F = OR_i (x_i AND x_{8+i}) (|F| = 510 here) and the 16-variable parity
   G (|G| = 31).  Each build step allocates at most ~380 fresh nodes; the
   exact F AND G needs ~960.  A node budget of 600 therefore admits every
   build step but forces the final conjunction down the ladder, where
   HB-shrunk operands succeed — the reply must carry a Degraded
   certificate and a BDD below the exact answer. *)
let test_degraded_certificate_is_sound () =
  let cfg =
    {
      Serve.Server.default_config with
      workers = 1;
      limits = { Serve.Handler.node_budget = Some 600; deadline = None };
    }
  in
  with_server cfg (fun t ->
      with_client t (fun c ->
          let lits = Array.init 16 (fun v -> Serve.Client.lit c v) in
          let build op = fst (Serve.Client.apply c op) in
          let f = ref (build (Serve.Proto.And (lits.(0), lits.(8)))) in
          for i = 1 to 7 do
            let p = build (Serve.Proto.And (lits.(i), lits.(8 + i))) in
            f := build (Serve.Proto.Or (!f, p))
          done;
          let g = ref lits.(0) in
          for v = 1 to 15 do
            g := build (Serve.Proto.Xor (!g, lits.(v)))
          done;
          let id, cert = Serve.Client.apply c (Serve.Proto.And (!f, !g)) in
          (match cert with
          | Serve.Proto.Degraded (_ :: _) -> ()
          | Serve.Proto.Degraded [] -> Alcotest.fail "empty degradation rungs"
          | Serve.Proto.Exact ->
              Alcotest.fail "budget did not bite: expected a Degraded reply");
          (* the oracle: same construction, no budgets *)
          let man = Bdd.create ~nvars:16 () in
          let exact_f =
            List.fold_left
              (fun acc i ->
                Bdd.bor man acc
                  (Bdd.band man (Bdd.ithvar man i) (Bdd.ithvar man (8 + i))))
              (Bdd.ff man) (List.init 8 Fun.id)
          in
          let exact_g =
            List.fold_left
              (fun acc v -> Bdd.bxor man acc (Bdd.ithvar man v))
              (Bdd.ff man) (List.init 16 Fun.id)
          in
          let exact = Bdd.band man exact_f exact_g in
          let got = fetch_into man c id in
          Alcotest.(check bool)
            "degraded result is an under-approximation of the exact answer"
            true (Bdd.leq man got exact);
          Alcotest.(check bool)
            "degraded result is not the exact answer" false
            (Bdd.equal got exact)))

(* --- deadline rescue ---------------------------------------------------- *)

(* The 24-variable cousin of the bad-order conjunction above: big enough
   that the exact And takes well over a millisecond, so a 1 ms
   per-request deadline must fire mid-operation.  The ladder catches
   Bdd.Deadline, shrinks the operands and re-arms the deadline per rung —
   the reply is either Degraded with a "deadline" rung (and a sound
   under-approximation) or, if even the smallest rung cannot finish, a
   typed Error.  Never a hang, never a wrong Exact. *)
let test_deadline_rescued_on_the_ladder () =
  let cfg = { Serve.Server.default_config with workers = 1 } in
  with_server cfg (fun t ->
      with_client t (fun c ->
          let lits = Array.init 24 (fun v -> Serve.Client.lit c v) in
          let build op = fst (Serve.Client.apply c op) in
          let f = ref (build (Serve.Proto.And (lits.(0), lits.(12)))) in
          for i = 1 to 11 do
            let p = build (Serve.Proto.And (lits.(i), lits.(12 + i))) in
            f := build (Serve.Proto.Or (!f, p))
          done;
          let g = ref lits.(0) in
          for v = 1 to 23 do
            g := build (Serve.Proto.Xor (!g, lits.(v)))
          done;
          (* only the final conjunction carries the deadline *)
          Serve.Client.post_meta c
            ~meta:{ Serve.Proto.deadline_ms = 1; token = 0 }
            (Serve.Proto.Apply (Serve.Proto.And (!f, !g)));
          match Serve.Client.receive c with
          | Serve.Proto.Handle { id; cert = Serve.Proto.Degraded rungs; _ } ->
              Alcotest.(check bool)
                "certificate names the deadline" true
                (List.mem "deadline" rungs);
              let man = Bdd.create ~nvars:24 () in
              let exact_f =
                List.fold_left
                  (fun acc i ->
                    Bdd.bor man acc
                      (Bdd.band man (Bdd.ithvar man i)
                         (Bdd.ithvar man (12 + i))))
                  (Bdd.ff man) (List.init 12 Fun.id)
              in
              let exact_g =
                List.fold_left
                  (fun acc v -> Bdd.bxor man acc (Bdd.ithvar man v))
                  (Bdd.ff man) (List.init 24 Fun.id)
              in
              let exact = Bdd.band man exact_f exact_g in
              let got = fetch_into man c id in
              Alcotest.(check bool)
                "deadline-rescued result is an under-approximation" true
                (Bdd.leq man got exact)
          | Serve.Proto.Handle { cert = Serve.Proto.Exact; _ } ->
              Alcotest.fail
                "a 1 ms deadline never fired on a multi-ms conjunction"
          | Serve.Proto.Error _ ->
              (* the ladder ran dry inside the deadline: acceptable on a
                 very slow machine — the contract is a typed reply *)
              ()
          | r -> Alcotest.failf "unexpected reply %a" Serve.Proto.pp_reply r))

(* --- Table_full on the ladder ------------------------------------------- *)

let test_table_full_is_degraded () =
  (* a hard unique-table capacity instead of a per-request node budget.
     Capacity is in table *slots*: with the ceiling at the initial 8192
     allocation, the first refused doubling — at 2/3 load, ~5460 nodes —
     raises Bdd.Table_full.  The 20-variable bad-order construction sits
     on each side of that line: the builds leave ~3450 live (pinned)
     nodes, the exact final conjunction needs ~7450.  Table_full must
     ride the same ladder and surface as a Degraded reply with a
     "table-full" rung, not as an Error or a dead server. *)
  let cfg =
    {
      Serve.Server.default_config with
      workers = 1;
      table_capacity = Some 8192;
    }
  in
  with_server cfg (fun t ->
      with_client t (fun c ->
          let lits = Array.init 20 (fun v -> Serve.Client.lit c v) in
          let build op = fst (Serve.Client.apply c op) in
          let f = ref (build (Serve.Proto.And (lits.(0), lits.(10)))) in
          for i = 1 to 9 do
            let p = build (Serve.Proto.And (lits.(i), lits.(10 + i))) in
            f := build (Serve.Proto.Or (!f, p))
          done;
          let g = ref lits.(0) in
          for v = 1 to 19 do
            g := build (Serve.Proto.Xor (!g, lits.(v)))
          done;
          let id, cert = Serve.Client.apply c (Serve.Proto.And (!f, !g)) in
          (match cert with
          | Serve.Proto.Degraded rungs ->
              Alcotest.(check bool)
                "certificate names the full table" true
                (List.mem "table-full" rungs)
          | Serve.Proto.Exact ->
              Alcotest.fail "capacity did not bite: expected a Degraded reply");
          let man = Bdd.create ~nvars:20 () in
          let exact_f =
            List.fold_left
              (fun acc i ->
                Bdd.bor man acc
                  (Bdd.band man (Bdd.ithvar man i) (Bdd.ithvar man (10 + i))))
              (Bdd.ff man) (List.init 10 Fun.id)
          in
          let exact_g =
            List.fold_left
              (fun acc v -> Bdd.bxor man acc (Bdd.ithvar man v))
              (Bdd.ff man) (List.init 20 Fun.id)
          in
          let exact = Bdd.band man exact_f exact_g in
          let got = fetch_into man c id in
          Alcotest.(check bool)
            "table-full result is an under-approximation" true
            (Bdd.leq man got exact)))

(* --- durable sessions: attach, resume, dedup ---------------------------- *)

let bind_of t =
  match Serve.Server.address t with
  | Unix.ADDR_INET (_, port) -> Serve.Server.Tcp port
  | Unix.ADDR_UNIX path -> Serve.Server.Unix_path path

let test_attach_resume_preserves_handles () =
  with_server Serve.Server.default_config (fun t ->
      let bind = bind_of t in
      let c1 = Serve.Client.connect_retrying ~key:"durable" bind in
      let h =
        match
          Serve.Client.call_idem c1
            (Serve.Proto.Lit { var = 3; phase = true })
        with
        | Serve.Proto.Handle { id; _ } -> id
        | r -> Alcotest.failf "lit: unexpected %a" Serve.Proto.pp_reply r
      in
      Serve.Client.close c1;
      Alcotest.(check int) "the keyed session lingers" 1
        (Serve.Server.durable_sessions t);
      (* a brand-new client attaches to the same key and finds the handle *)
      let c2 = Serve.Client.connect_retrying ~key:"durable" bind in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c2)
        (fun () ->
          match Serve.Client.call_idem c2 (Serve.Proto.Fetch { handle = h }) with
          | Serve.Proto.Bdd_payload { bdd } ->
              let man = Bdd.create ~nvars:4 () in
              let f = Bdd.import man (Bdd.serialized_of_string bdd) in
              Alcotest.(check bool)
                "the resumed session still holds x3" true
                (Bdd.equal f (Bdd.ithvar man 3));
              Alcotest.(check bool)
                "the server counted a resume" true
                (Serve.Server.resumed_sessions t >= 1)
          | r -> Alcotest.failf "fetch: unexpected %a" Serve.Proto.pp_reply r))

let test_idempotency_token_dedups () =
  with_server Serve.Server.default_config (fun t ->
      with_client t (fun c ->
          let meta = { Serve.Proto.deadline_ms = 0; token = 987654321 } in
          let req = Serve.Proto.Lit { var = 5; phase = true } in
          Serve.Client.post_meta c ~meta req;
          let first = Serve.Client.receive c in
          let h1 =
            match first with
            | Serve.Proto.Handle { id; _ } -> id
            | r -> Alcotest.failf "lit: unexpected %a" Serve.Proto.pp_reply r
          in
          (* the retry of an already-executed request replays the recorded
             reply — byte-identically — instead of re-executing *)
          Serve.Client.post_meta c ~meta req;
          let second = Serve.Client.receive c in
          Alcotest.(check bool) "replayed reply is identical" true
            (first = second);
          Alcotest.(check int) "server counted the dedup" 1
            (Serve.Server.deduped t);
          (* the request body really ran once: the next fresh handle is
             h1 + 1, not h1 + 2 *)
          let h2 = Serve.Client.lit c 6 in
          Alcotest.(check int) "single execution consumed one handle id"
            (h1 + 1) h2))

let test_error_replies_are_not_deduped () =
  with_server Serve.Server.default_config (fun t ->
      with_client t (fun c ->
          let meta = { Serve.Proto.deadline_ms = 0; token = 424242777 } in
          let req = Serve.Proto.Fetch { handle = 31337 } in
          Serve.Client.post_meta c ~meta req;
          (match Serve.Client.receive c with
          | Serve.Proto.Error _ -> ()
          | r -> Alcotest.failf "expected Error, got %a" Serve.Proto.pp_reply r);
          (* a retry under the same token must re-execute — a transient
             failure must not be replayed from the dedup window as a
             sticky error for that logical request *)
          Serve.Client.post_meta c ~meta req;
          (match Serve.Client.receive c with
          | Serve.Proto.Error _ -> ()
          | r -> Alcotest.failf "expected Error, got %a" Serve.Proto.pp_reply r);
          Alcotest.(check int) "no dedup hit was recorded" 0
            (Serve.Server.deduped t)))

(* --- pipelining across Attach ------------------------------------------- *)

let test_pipelined_request_attach_binding () =
  (* a request queued before an Attach must execute against the session
     it was submitted under — the shard was chosen from that session's
     id, so re-reading the rebound connection at execution time would
     drive the new session from the old session's worker domain.  The
     worker is parked on a gate so the Lit is provably still queued when
     the Attach rebinds the connection. *)
  let gate_m = Mutex.create () in
  let gate_c = Condition.create () in
  let release = ref false in
  let marker = 515151 in
  let on_dispatch = function
    | Serve.Proto.Fetch { handle } when handle = marker ->
        Mutex.lock gate_m;
        while not !release do
          Condition.wait gate_c gate_m
        done;
        Mutex.unlock gate_m
    | _ -> ()
  in
  let cfg =
    {
      Serve.Server.default_config with
      workers = 1;
      on_dispatch = Some on_dispatch;
    }
  in
  with_server cfg (fun t ->
      with_client t (fun c ->
          Serve.Client.post c (Serve.Proto.Fetch { handle = marker });
          Serve.Client.post c (Serve.Proto.Lit { var = 9; phase = true });
          Serve.Client.post c (Serve.Proto.Attach { key = "rebound" });
          (* the reader answers the Attach inline while the worker is
             parked, so the first reply on the wire must be Attached —
             receiving it proves the rebind happened with the Lit still
             queued *)
          (match Serve.Client.receive c with
          | Serve.Proto.Attached { handles; _ } ->
              Alcotest.(check int) "the fresh keyed session is empty" 0 handles
          | r -> Alcotest.failf "expected Attached, got %a" Serve.Proto.pp_reply r);
          Mutex.lock gate_m;
          release := true;
          Condition.broadcast gate_c;
          Mutex.unlock gate_m;
          (* parked marker answers first (unknown handle), then the Lit *)
          (match Serve.Client.receive c with
          | Serve.Proto.Error _ -> ()
          | r -> Alcotest.failf "marker: expected Error, got %a" Serve.Proto.pp_reply r);
          let lit_handle =
            match Serve.Client.receive c with
            | Serve.Proto.Handle { id; _ } -> id
            | r -> Alcotest.failf "lit: expected Handle, got %a" Serve.Proto.pp_reply r
          in
          (* the Lit landed on the pre-attach anonymous session: the
             attached keyed session must NOT know the handle *)
          match Serve.Client.call c (Serve.Proto.Fetch { handle = lit_handle }) with
          | Serve.Proto.Error _ -> ()
          | r ->
              Alcotest.failf
                "pipelined Lit leaked into the attached session: %a"
                Serve.Proto.pp_reply r))

(* --- admission control -------------------------------------------------- *)

let test_queue_overflow_is_explicit () =
  (* one worker, queue depth 1.  The on_dispatch hook parks the worker on
     a gate while it holds the marker request, so the test controls
     exactly what is in flight: one request occupies the worker, one sits
     in the queue, and the next four MUST come back Overloaded — sent
     immediately by the reader thread, ahead of the queued replies. *)
  let gate_m = Mutex.create () in
  let gate_c = Condition.create () in
  let entered = ref false in
  let release = ref false in
  let marker = 424242 in
  let on_dispatch = function
    | Serve.Proto.Fetch { handle } when handle = marker ->
        Mutex.lock gate_m;
        entered := true;
        Condition.broadcast gate_c;
        while not !release do
          Condition.wait gate_c gate_m
        done;
        Mutex.unlock gate_m
    | _ -> ()
  in
  let cfg =
    {
      Serve.Server.default_config with
      workers = 1;
      queue_depth = 1;
      on_dispatch = Some on_dispatch;
    }
  in
  with_server cfg (fun t ->
      with_client t (fun c ->
          Serve.Client.post c (Serve.Proto.Fetch { handle = marker });
          Mutex.lock gate_m;
          while not !entered do
            Condition.wait gate_c gate_m
          done;
          Mutex.unlock gate_m;
          (* worker parked: one Stats fills the queue, four more overflow *)
          for _ = 1 to 5 do
            Serve.Client.post c Serve.Proto.Stats
          done;
          (* the four rejections arrive first — the worker is still parked,
             so nothing else can possibly reply *)
          for i = 1 to 4 do
            match Serve.Client.receive c with
            | Serve.Proto.Overloaded -> ()
            | r ->
                Alcotest.failf "rejection %d: expected Overloaded, got %a" i
                  Serve.Proto.pp_reply r
          done;
          Mutex.lock gate_m;
          release := true;
          Condition.broadcast gate_c;
          Mutex.unlock gate_m;
          (* now the parked marker request answers (unknown handle), then
             the one queued Stats *)
          (match Serve.Client.receive c with
          | Serve.Proto.Error _ -> ()
          | r -> Alcotest.failf "marker: expected Error, got %a" Serve.Proto.pp_reply r);
          (match Serve.Client.receive c with
          | Serve.Proto.Stats_are _ -> ()
          | r ->
              Alcotest.failf "queued request: expected Stats_are, got %a"
                Serve.Proto.pp_reply r);
          Alcotest.(check int) "server counted 4 rejections" 4
            (Serve.Server.rejected t)))

(* --- pipelined batches --------------------------------------------------- *)

let nm r = (Serve.Proto.no_meta, r)

let test_batch_replies_byte_identical () =
  (* the same deterministic request sequence, once as singletons and once
     as a single batch frame, from two fresh sessions: the reply frames
     must match byte for byte — pipelining changes framing on the way in,
     nothing on the way out *)
  let reqs =
    [
      Serve.Proto.Lit { var = 0; phase = true };
      Serve.Proto.Lit { var = 1; phase = false };
      Serve.Proto.Apply (Serve.Proto.And (1, 2));
      Serve.Proto.Count { handle = 3; nvars = 2 };
      Serve.Proto.Fetch { handle = 3 };
      Serve.Proto.Fetch { handle = 999 } (* an Error rides in order too *);
    ]
  in
  with_server Serve.Server.default_config (fun t ->
      let singleton_frames =
        with_client t (fun c ->
            List.map
              (fun r ->
                Serve.Client.post c r;
                Serve.Client.receive_frame c)
              reqs)
      in
      let batched_frames =
        with_client t (fun c ->
            Serve.Client.post_batch c (List.map nm reqs);
            List.map (fun _ -> Serve.Client.receive_frame c) reqs)
      in
      List.iteri
        (fun i (a, b) ->
          Alcotest.(check string)
            (Printf.sprintf "reply %d is byte-identical" i)
            a b)
        (List.combine singleton_frames batched_frames);
      Alcotest.(check int) "the server counted one batch" 1
        (Serve.Server.batches t))

let test_batch_order_and_call_batch () =
  with_server Serve.Server.default_config (fun t ->
      with_client t (fun c ->
          let replies =
            Serve.Client.call_batch c
              (List.map nm
                 [
                   Serve.Proto.Ping;
                   Serve.Proto.Lit { var = 4; phase = true };
                   Serve.Proto.Apply (Serve.Proto.Not 1);
                 ])
          in
          match replies with
          | [ Serve.Proto.Pong; Serve.Proto.Handle { id = 1; _ };
              Serve.Proto.Handle { id = 2; _ } ] ->
              ()
          | rs ->
              Alcotest.failf "replies out of order: %s"
                (String.concat "; "
                   (List.map
                      (Format.asprintf "%a" Serve.Proto.pp_reply)
                      rs))))

let test_batch_overflow_n_overloaded () =
  (* a refused batch of N answers N Overloaded frames — one reply per
     request holds even when admission control sheds the whole envelope.
     The worker is parked on the marker and a singleton fills the
     depth-1 queue, so the batch deterministically overflows. *)
  let gate_m = Mutex.create () in
  let gate_c = Condition.create () in
  let entered = ref false in
  let release = ref false in
  let marker = 616161 in
  let on_dispatch = function
    | Serve.Proto.Fetch { handle } when handle = marker ->
        Mutex.lock gate_m;
        entered := true;
        Condition.broadcast gate_c;
        while not !release do
          Condition.wait gate_c gate_m
        done;
        Mutex.unlock gate_m
    | _ -> ()
  in
  let cfg =
    {
      Serve.Server.default_config with
      workers = 1;
      queue_depth = 1;
      on_dispatch = Some on_dispatch;
    }
  in
  with_server cfg (fun t ->
      with_client t (fun c ->
          Serve.Client.post c (Serve.Proto.Fetch { handle = marker });
          Mutex.lock gate_m;
          while not !entered do
            Condition.wait gate_c gate_m
          done;
          Mutex.unlock gate_m;
          (* worker parked; this singleton fills the queue *)
          Serve.Client.post c Serve.Proto.Stats;
          let batch =
            List.map nm
              [ Serve.Proto.Stats; Serve.Proto.Stats; Serve.Proto.Stats ]
          in
          let replies = Serve.Client.call_batch c batch in
          List.iteri
            (fun i r ->
              match r with
              | Serve.Proto.Overloaded -> ()
              | r ->
                  Alcotest.failf "batch reply %d: expected Overloaded, got %a"
                    i Serve.Proto.pp_reply r)
            replies;
          Alcotest.(check int) "exactly N rejections" 3 (List.length replies);
          Mutex.lock gate_m;
          release := true;
          Condition.broadcast gate_c;
          Mutex.unlock gate_m;
          (match Serve.Client.receive c with
          | Serve.Proto.Error _ -> ()
          | r -> Alcotest.failf "marker: expected Error, got %a" Serve.Proto.pp_reply r);
          (match Serve.Client.receive c with
          | Serve.Proto.Stats_are _ -> ()
          | r ->
              Alcotest.failf "queued request: expected Stats_are, got %a"
                Serve.Proto.pp_reply r);
          Alcotest.(check int) "server counted the batch's rejections" 3
            (Serve.Server.rejected t)))

(* --- the shared arena over the wire -------------------------------------- *)

let arena_stat t key =
  match Serve.Server.arena t with
  | None -> Alcotest.fail "arena mode is on but Server.arena is None"
  | Some a -> (
      match List.assoc_opt key (Arena.stats a) with
      | Some v -> v
      | None -> Alcotest.failf "arena stats is missing %s" key)

let test_arena_compile_shared_zero_reimports () =
  (* the acceptance demo: one session compiles a model, N later sessions
     attach to the very same arena segments — published count frozen,
     every later compile served from the catalog (zero re-imports) *)
  let cfg = { Serve.Server.default_config with arena = true } in
  with_server cfg (fun t ->
      let blif = Blif.to_string (Generate.counter ~bits:4) in
      let first =
        with_client t (fun c -> Serve.Client.compile c ~name:"ctr" ~blif)
      in
      Alcotest.(check bool) "compile produced handles" true (first <> []);
      let published = arena_stat t "arena.published" in
      Alcotest.(check bool) "the model was published as segments" true
        (published >= 1 && published <= List.length first);
      let hits0 = arena_stat t "arena.hits" in
      let later =
        List.init 3 (fun _ ->
            with_client t (fun c -> Serve.Client.compile c ~name:"ctr" ~blif))
      in
      List.iter
        (fun handles ->
          Alcotest.(check int) "same outputs from the catalog"
            (List.length first) (List.length handles);
          List.iter2
            (fun (n1, _, s1) (n2, _, s2) ->
              Alcotest.(check string) "same output name" n1 n2;
              Alcotest.(check int) "same node count (same segment)" s1 s2)
            first handles)
        later;
      Alcotest.(check int) "zero re-imports: published count is frozen"
        published
        (arena_stat t "arena.published");
      Alcotest.(check bool) "every later compile hit the catalog" true
        (arena_stat t "arena.hits" - hits0 >= 3 * List.length first);
      (* the arena answer is still correct: reach the model from a
         catalog-served session and check the exact state count *)
      with_client t (fun c ->
          ignore (Serve.Client.compile c ~name:"ctr" ~blif);
          match
            Serve.Client.call c (Serve.Proto.Reach { model = "ctr"; max_iter = 0 })
          with
          | Serve.Proto.Reach_done { states; cert = Serve.Proto.Exact; _ } ->
              Alcotest.(check (float 0.0)) "16 states" 16.0 states
          | r -> Alcotest.failf "expected Reach_done, got %a" Serve.Proto.pp_reply r))

let test_arena_put_dedups_across_sessions () =
  let cfg = { Serve.Server.default_config with arena = true } in
  with_server cfg (fun t ->
      let man = Bdd.create ~nvars:4 () in
      let payload =
        Bdd.serialized_to_string
          (Bdd.export man (Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 3)))
      in
      with_client t (fun c1 ->
          with_client t (fun c2 ->
              ignore (Serve.Client.put c1 payload);
              ignore (Serve.Client.put c2 payload);
              Alcotest.(check int) "one segment for identical payloads" 1
                (arena_stat t "arena.published");
              Alcotest.(check bool) "the second put was a dedup hit" true
                (arena_stat t "arena.hits" >= 1);
              (* a corrupt payload is still a clean typed error *)
              match Serve.Client.call c1 (Serve.Proto.Put { bdd = "garbage" }) with
              | Serve.Proto.Error _ -> ()
              | r -> Alcotest.failf "expected Error, got %a" Serve.Proto.pp_reply r)))

(* --- compile + reach ---------------------------------------------------- *)

let test_compile_reach_counter () =
  with_server Serve.Server.default_config (fun t ->
      with_client t (fun c ->
          let blif = Blif.to_string (Generate.counter ~bits:4) in
          let handles = Serve.Client.compile c ~name:"ctr" ~blif in
          Alcotest.(check bool) "compile produced handles" true (handles <> []);
          match
            Serve.Client.call c (Serve.Proto.Reach { model = "ctr"; max_iter = 0 })
          with
          | Serve.Proto.Reach_done { states; cert = Serve.Proto.Exact; reached; _ }
            ->
              Alcotest.(check (float 0.0)) "4-bit counter: 16 states" 16.0 states;
              (* the reached set came back as a session handle *)
              let man = Bdd.create () in
              let r = fetch_into man c reached in
              Alcotest.(check bool) "reached set is non-trivial" false
                (Bdd.equal r (Bdd.ff man))
          | r -> Alcotest.failf "expected exact Reach_done, got %a" Serve.Proto.pp_reply r))

(* --- ping and drain ----------------------------------------------------- *)

let test_ping_and_graceful_drain () =
  let t = Serve.Server.start { Serve.Server.default_config with bind = Serve.Server.Tcp 0 } in
  let c = connect t in
  Serve.Client.ping c;
  ignore (Serve.Client.lit c 0 ~phase:true);
  Alcotest.(check int) "one session" 1 (Serve.Server.sessions t);
  Serve.Server.drain t;
  (* the draining server hung up on the client *)
  (match Serve.Client.call c Serve.Proto.Ping with
  | exception (End_of_file | Serve.Proto.Bad_frame _ | Unix.Unix_error _) -> ()
  | r -> Alcotest.failf "after drain: expected EOF, got %a" Serve.Proto.pp_reply r);
  Serve.Client.close c;
  (* drain is idempotent *)
  Serve.Server.drain t;
  Alcotest.(check int) "no sessions after drain" 0 (Serve.Server.sessions t)

let tests =
  ( "serve",
    [
      Alcotest.test_case "handle namespaces are per-session" `Quick
        test_session_isolation;
      Alcotest.test_case "Degraded certificates are sound under-approximations"
        `Quick test_degraded_certificate_is_sound;
      Alcotest.test_case "a blown deadline is rescued on the ladder" `Quick
        test_deadline_rescued_on_the_ladder;
      Alcotest.test_case "Table_full degrades instead of erroring" `Quick
        test_table_full_is_degraded;
      Alcotest.test_case "attach resumes a durable session's handles" `Quick
        test_attach_resume_preserves_handles;
      Alcotest.test_case "idempotency tokens dedup to exactly-once" `Quick
        test_idempotency_token_dedups;
      Alcotest.test_case "error replies are never dedup-replayed" `Quick
        test_error_replies_are_not_deduped;
      Alcotest.test_case "a pipelined request stays on its submit-time session"
        `Quick test_pipelined_request_attach_binding;
      Alcotest.test_case "queue overflow answers Overloaded, never hangs" `Quick
        test_queue_overflow_is_explicit;
      Alcotest.test_case "pipelined batch replies are byte-identical" `Quick
        test_batch_replies_byte_identical;
      Alcotest.test_case "call_batch streams replies in request order" `Quick
        test_batch_order_and_call_batch;
      Alcotest.test_case "a refused batch answers N Overloaded frames" `Quick
        test_batch_overflow_n_overloaded;
      Alcotest.test_case "arena compile: one segment set, zero re-imports"
        `Quick test_arena_compile_shared_zero_reimports;
      Alcotest.test_case "arena put dedups identical payloads across sessions"
        `Quick test_arena_put_dedups_across_sessions;
      Alcotest.test_case "compile + reach a 4-bit counter exactly" `Quick
        test_compile_reach_counter;
      Alcotest.test_case "ping and graceful, idempotent drain" `Quick
        test_ping_and_graceful_drain;
    ] )
