let () =
  Alcotest.run "dac98_bdd"
    [
      Test_bdd.tests;
      Test_kernel.tests;
      Test_approx.tests;
      Test_decomp.tests;
      Test_partitioned.tests;
      Test_isop.tests;
      Test_circuit.tests;
      Test_blif.tests;
      Test_reach.tests;
      Test_harness.tests;
      Test_dot.tests;
      Test_invariant.tests;
      Test_ctl.tests;
      Test_approx_traversal.tests;
      Test_simplify.tests;
      Test_misc.tests;
      Test_serialize.tests;
      Test_mt.tests;
      Test_obs.tests;
      Test_resil.tests;
      Test_service.tests;
      Test_serve_proto.tests;
      Test_serve.tests;
      Test_store.tests;
    ]
