(* The compressed decision-diagram subsystem (lib/dd): the four modes are
   four representations of the same function space, so every property
   here is phrased against the truth-table oracle or the plain-BDD
   kernel and quantified over all modes. *)

let qtest ?(count = 200) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let nvars = 6
let arb = Tgen.arbitrary_expr ~nvars ~depth:6

(* build [e] in a fresh manager of [mode] *)
let rec build man = function
  | Tgen.T -> Dd.tt man
  | Tgen.F -> Dd.ff man
  | Tgen.V i -> Dd.ithvar man i
  | Tgen.Not e -> Dd.bnot man (build man e)
  | Tgen.And (a, b) -> Dd.band man (build man a) (build man b)
  | Tgen.Or (a, b) -> Dd.bor man (build man a) (build man b)
  | Tgen.Xor (a, b) -> Dd.bxor man (build man a) (build man b)
  | Tgen.Imp (a, b) -> Dd.bor man (Dd.bnot man (build man a)) (build man b)
  | Tgen.Ite (a, b, c) ->
      Dd.ite man (build man a) (build man b) (build man c)

let setup mode e =
  let man = Dd.create ~nvars ~mode () in
  (man, build man e, Tgen.build_oracle nvars e)

(* semantic equality against the oracle over the whole assignment space *)
let agrees man u o =
  let ok = ref true in
  for asg = 0 to (1 lsl nvars) - 1 do
    if Dd.eval man u (fun v -> asg land (1 lsl v) <> 0) <> Oracle.eval o asg
    then ok := false
  done;
  !ok

let for_all_modes prop = List.for_all prop Dd.all_modes

(* ------------------------------------------------------------------ *)
(* Truth-table agreement and canonicity                                 *)
(* ------------------------------------------------------------------ *)

let prop_connectives =
  qtest ~count:400 "connectives match oracle in all four modes" arb (fun e ->
      for_all_modes (fun mode ->
          let man, u, o = setup mode e in
          agrees man u o))

let prop_canonical =
  qtest "equal functions are physically equal (all modes)"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      for_all_modes (fun mode ->
          let man = Dd.create ~nvars ~mode () in
          let u1 = build man e1 and u2 = build man e2 in
          let o1 = Tgen.build_oracle nvars e1
          and o2 = Tgen.build_oracle nvars e2 in
          Oracle.equal o1 o2 = Dd.equal u1 u2))

let prop_double_negation =
  qtest "bnot (bnot f) is physically f (all modes)" arb (fun e ->
      for_all_modes (fun mode ->
          let man, u, _ = setup mode e in
          Dd.equal u (Dd.bnot man (Dd.bnot man u))))

let prop_exists =
  qtest "exists matches oracle (all modes)"
    QCheck.(pair arb (make (Tgen.var_subset_gen nvars)))
    (fun (e, vs) ->
      for_all_modes (fun mode ->
          let man, u, o = setup mode e in
          agrees man (Dd.exists man ~vars:vs u) (Oracle.exists o vs)
          && agrees man (Dd.forall man ~vars:vs u) (Oracle.forall o vs)))

let prop_restrict =
  qtest "restrict agrees with f on the care set (all modes)"
    QCheck.(pair arb arb)
    (fun (ef, ec) ->
      for_all_modes (fun mode ->
          let man = Dd.create ~nvars ~mode () in
          let f = build man ef and c = build man ec in
          let r = Dd.restrict man f ~care:c in
          let ok = ref true in
          for asg = 0 to (1 lsl nvars) - 1 do
            let lookup v = asg land (1 lsl v) <> 0 in
            if Dd.eval man c lookup then
              if Dd.eval man r lookup <> Dd.eval man f lookup then ok := false
          done;
          !ok))

let prop_count_minterms =
  qtest "count_minterms matches oracle (all modes)" arb (fun e ->
      for_all_modes (fun mode ->
          let man, u, o = setup mode e in
          Dd.count_minterms man u ~nvars = float_of_int (Oracle.count o)))

(* ------------------------------------------------------------------ *)
(* Conversions                                                          *)
(* ------------------------------------------------------------------ *)

let prop_bdd_round_trip =
  qtest "to_bdd (of_bdd f) == f, and of_bdd is canonical (all modes)" arb
    (fun e ->
      let bman, f, _ = Tgen.setup ~nvars e in
      for_all_modes (fun mode ->
          let dman = Dd.create ~nvars ~mode () in
          let u = Dd.of_bdd dman bman f in
          (* converting is the same as building natively ... *)
          Dd.equal u (build dman e)
          (* ... and converting back recovers the original exactly *)
          && Bdd.equal f (Dd.to_bdd dman bman u)))

let prop_cross_mode =
  qtest "convert between every mode pair preserves the function" arb (fun e ->
      let o = Tgen.build_oracle nvars e in
      List.for_all
        (fun m1 ->
          let src = Dd.create ~nvars ~mode:m1 () in
          let u = build src e in
          List.for_all
            (fun m2 ->
              let dst = Dd.create ~nvars ~mode:m2 () in
              let v = Dd.convert ~src ~dst u in
              (* semantically the function, and canonical in dst: equal to
                 the native build *)
              agrees dst v o && Dd.equal v (build dst e))
            Dd.all_modes)
        Dd.all_modes)

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let prop_serialize_round_trip =
  qtest "import (export f) round-trips, same and fresh manager (all modes)"
    arb (fun e ->
      for_all_modes (fun mode ->
          let man, u, o = setup mode e in
          let s = Dd.export man u in
          Dd.equal u (Dd.import man s)
          &&
          let man2 = Dd.create ~nvars ~mode () in
          agrees man2 (Dd.import man2 s) o))

let prop_binary_round_trip =
  qtest "serialized_of_string (serialized_to_string s) == s (all modes)" arb
    (fun e ->
      for_all_modes (fun mode ->
          let man, u, _ = setup mode e in
          let s = Dd.export man u in
          Dd.serialized_of_string (Dd.serialized_to_string s) = s))

let prop_cross_mode_import =
  qtest ~count:100 "importing a frame into a different-mode manager converts"
    arb (fun e ->
      let o = Tgen.build_oracle nvars e in
      for_all_modes (fun m1 ->
          let man, u, _ = setup m1 e in
          let str = Dd.serialized_to_string (Dd.export man u) in
          for_all_modes (fun m2 ->
              let man2 = Dd.create ~nvars ~mode:m2 () in
              match Dd.read_string man2 str with
              | [ v ] -> agrees man2 v o
              | _ -> false)))

(* mirrors test_serialize's corruption property: any mutilation of a
   valid frame either raises [Corrupt] or yields a semantically valid
   value (flips confined to node payloads can still decode) — it must
   never crash, hang, or break the importing manager *)
let prop_corruption =
  qtest ~count:400 "truncation/bit-flips raise Corrupt or decode cleanly"
    QCheck.(triple arb (int_bound 1000) (int_bound 7))
    (fun (e, pos_seed, bit) ->
      for_all_modes (fun mode ->
          let man, u, _ = setup mode e in
          let good = Dd.serialized_to_string (Dd.export man u) in
          let len = String.length good in
          let mutations =
            [
              String.sub good 0 (pos_seed mod len);
              (let b = Bytes.of_string good in
               let pos = pos_seed mod len in
               Bytes.set b pos
                 (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
               Bytes.to_string b);
            ]
          in
          List.for_all
            (fun s ->
              match Dd.read_string man s with
              | exception Dd.Corrupt _ -> true
              | vs ->
                  (* decoded: whatever came out must be well-formed enough
                     to traverse, and the manager still canonical *)
                  List.iter (fun v -> ignore (Dd.size v)) vs;
                  Dd.equal u (Dd.import man (Dd.export man u)))
            mutations))

let test_legacy_bdd1 () =
  (* read_string accepts plain-BDD "BDD1" frames into every mode *)
  let bman = Bdd.create ~nvars () in
  let f =
    Bdd.bor bman
      (Bdd.band bman (Bdd.ithvar bman 0) (Bdd.ithvar bman 3))
      (Bdd.ithvar bman 5)
  in
  let str = Bdd.serialized_to_string (Bdd.export bman f) in
  List.iter
    (fun mode ->
      let dman = Dd.create ~nvars ~mode () in
      match Dd.read_string dman str with
      | [ u ] ->
          Alcotest.(check bool)
            ("legacy BDD1 into " ^ Dd.mode_name mode)
            true
            (Bdd.equal f (Dd.to_bdd dman bman u))
      | _ -> Alcotest.fail "legacy BDD1: expected one root")
    Dd.all_modes

(* ------------------------------------------------------------------ *)
(* Compression unit tests                                               *)
(* ------------------------------------------------------------------ *)

let test_chain_compression () =
  (* the all-zeros cube over a wide universe: a plain BDD is one ¬x-node
     per level, CBDD folds the whole run into a single chain node *)
  let wide = 40 in
  let zeros mode =
    let man = Dd.create ~nvars:wide ~mode () in
    let u =
      Dd.cube_of_literals man (List.init wide (fun v -> (v, false)))
    in
    (man, u)
  in
  let _, b = zeros Dd.Bdd in
  Alcotest.(check int) "plain bdd all-zero cube" (wide + 2) (Dd.size b);
  let _, c = zeros Dd.Cbdd in
  Alcotest.(check int) "cbdd all-zero cube" 3 (Dd.size c);
  let _, z = zeros Dd.Zdd in
  Alcotest.(check bool) "zdd all-zero cube is small" true (Dd.size z <= 2);
  (* the Czdd mirror: tautology = don't-care chain, n nodes in Zdd, 1 in
     Czdd *)
  (* ff is not reachable from the tautology, so the counts are the
     don't-care chain plus the true leaf *)
  let zman = Dd.create ~nvars:wide ~mode:Dd.Zdd () in
  Alcotest.(check int) "zdd tautology" (wide + 1) (Dd.size (Dd.tt zman));
  let czman = Dd.create ~nvars:wide ~mode:Dd.Czdd () in
  Alcotest.(check int) "czdd tautology" 2 (Dd.size (Dd.tt czman))

let prop_chain_accounting =
  qtest ~count:100 "chain folds never exceed mk calls" arb (fun e ->
      for_all_modes (fun mode ->
          let man = Dd.create ~nvars ~mode () in
          ignore (build man e);
          let folds, mk = Dd.chain_counters man in
          folds >= 0 && folds <= mk))

let prop_shared_table =
  qtest ~count:100 "~shared:true builds the same canonical diagrams" arb
    (fun e ->
      for_all_modes (fun mode ->
          let seq = Dd.create ~nvars ~mode () in
          let par = Dd.create ~nvars ~mode ~shared:true () in
          let us = build seq e and up = build par e in
          Dd.size us = Dd.size up
          && Dd.equal (Dd.convert ~src:par ~dst:seq up) us))

(* ------------------------------------------------------------------ *)
(* The paper's algorithms are mode-independent                          *)
(* ------------------------------------------------------------------ *)

(* HB/SP/UA/RUA run on the plain-BDD kernel; converting their results
   into any compressed mode must preserve the function exactly.  This is
   the acceptance property: the approximation pipeline composes with the
   compressed representations without changing a single minterm. *)
let prop_approx_modes =
  qtest ~count:60 "approx results identical in every mode" arb (fun e ->
      let bman, f, _ = Tgen.setup ~nvars e in
      List.for_all
        (fun meth ->
          let results =
            [ Approx.under bman meth f; Approx.over bman meth f ]
          in
          List.for_all
            (fun g ->
              let og = Oracle.of_bdd bman nvars g in
              for_all_modes (fun mode ->
                  let dman = Dd.create ~nvars ~mode () in
                  let u = Dd.of_bdd dman bman g in
                  agrees dman u og
                  && Bdd.equal g (Dd.to_bdd dman bman u)
                  && Dd.count_minterms dman u ~nvars
                     = Bdd.count_minterms bman g ~nvars))
            results)
        Approx.all_methods)

let tests =
  ( "dd",
    [
      prop_connectives;
      prop_canonical;
      prop_double_negation;
      prop_exists;
      prop_restrict;
      prop_count_minterms;
      prop_bdd_round_trip;
      prop_cross_mode;
      prop_serialize_round_trip;
      prop_binary_round_trip;
      prop_cross_mode_import;
      prop_corruption;
      Alcotest.test_case "legacy BDD1 frames" `Quick test_legacy_bdd1;
      Alcotest.test_case "chain compression" `Quick test_chain_compression;
      prop_chain_accounting;
      prop_shared_table;
      prop_approx_modes;
    ] )
