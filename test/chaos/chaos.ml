(* Chaos harness: reachability under seeded fault injection.

   Three campaigns, all deterministic in their seeds:

   1. Reach chaos — both traversal engines on a bank of small circuits,
      each run with a kernel fault injector armed (forced Node_limit,
      cache wipes).  Asserts that no exception escapes an engine, that
      every reached set is a subset of the fault-free oracle's (the
      soundness contract of the degradation ladder), and that a run
      claiming [exact] matches the oracle bit for bit.

   2. Kill-and-resume — a traversal is cut short mid-flight (simulating
      a kill) having written periodic checkpoints; resuming from the last
      checkpoint must reproduce the uninterrupted run's reached set
      byte-identically.  A corrupted or torn checkpoint must be refused
      with Bdd.Corrupt, never resumed from silently.

   3. Runner chaos — a fleet of jobs under dispatch crashes and kernel
      faults with a retry policy: every outcome must be Done (with the
      correct value) or Quarantined; nothing else, and never an escaped
      exception.

     dune exec test/chaos/chaos.exe            # full campaign (~250 runs)
     dune exec test/chaos/chaos.exe -- 5       # quicker: 5 seeds per pair

   Exit 0 with a summary on success; exit 1 on the first violation. *)

let failures = ref 0

let faili fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "chaos: FAIL %s\n%!" msg)
    fmt

(* name, generator, and a deliberately tight node ceiling (used on every
   third seed) chosen so the degradation ladder genuinely engages on the
   dense controllers while the shift-register family mostly fits *)
let circuits =
  [
    ("counter5", (fun () -> Generate.counter ~bits:5), 8_000);
    ("ring8", (fun () -> Generate.ring ~bits:8), 8_000);
    ("johnson6", (fun () -> Generate.johnson ~bits:6), 8_000);
    ("lfsr6", (fun () -> Generate.lfsr ~bits:6), 8_000);
    ("dense10", (fun () -> Generate.dense_controller ~latches:10 ~seed:5), 6_000);
    ("dense16", (fun () -> Generate.dense_controller ~latches:16 ~seed:5), 8_000);
  ]

let engines =
  [
    ("bfs", fun ?node_limit t -> Bfs.run ?node_limit t);
    ("hd", fun ?node_limit t -> High_density.run ?node_limit t);
  ]

let build circuit = Trans.build (Compile.compile (circuit ()))

(* fault-free exact reached set, exported so each chaos run can import it
   into its own manager *)
let oracle circuit =
  let trans = build circuit in
  let r = Bfs.run trans in
  if not r.Traversal.exact then failwith "oracle run not exact";
  (Bdd.export (Trans.man trans) r.Traversal.reached, r.Traversal.states)

(* --- campaign 1: engines under kernel fault injection ------------------ *)

let reach_chaos seeds =
  let total = ref 0 and degraded = ref 0 and exhausted = ref 0 in
  List.iter
    (fun (cname, circuit, tight_nl) ->
      let oracle_s, oracle_states = oracle circuit in
      List.iter
        (fun (ename, run) ->
          for seed = 1 to seeds do
            incr total;
            let trans = build circuit in
            let man = Trans.man trans in
            let config =
              {
                Resil.Fault.disabled with
                seed;
                p_node_limit = 0.25;
                p_cache_wipe = 0.05;
              }
            in
            Resil.Fault.attach ~config man;
            (* every third run also gets a real (tight) node ceiling so
               genuine exhaustion and injected faults interleave *)
            let node_limit = if seed mod 3 = 0 then Some tight_nl else None in
            match run ?node_limit trans with
            | exception e ->
                faili "%s/%s seed %d: escaped exception %s" cname ename seed
                  (Printexc.to_string e)
            | r ->
                (* verification below must run injection-free *)
                Bdd.set_fault_hook man None;
                let oracle_bdd = Bdd.import man oracle_s in
                if not (Bdd.leq man r.Traversal.reached oracle_bdd) then
                  faili "%s/%s seed %d: reached set NOT a subset of oracle"
                    cname ename seed;
                if
                  r.Traversal.exact
                  && not (Bdd.equal r.Traversal.reached oracle_bdd)
                then
                  faili "%s/%s seed %d: claims exact but differs from oracle"
                    cname ename seed;
                if r.Traversal.exact && r.Traversal.states <> oracle_states
                then
                  faili "%s/%s seed %d: exact state count %g <> oracle %g"
                    cname ename seed r.Traversal.states oracle_states;
                (match r.Traversal.degrade with
                | Resil.Degrade.Exact ->
                    if not r.Traversal.exact then
                      faili "%s/%s seed %d: Exact certificate on inexact run"
                        cname ename seed
                | Resil.Degrade.Degraded i ->
                    if r.Traversal.exact then
                      faili "%s/%s seed %d: Degraded certificate on exact run"
                        cname ename seed;
                    if i.Resil.Degrade.steps_approximated > 0 then
                      incr degraded;
                    if i.Resil.Degrade.exhausted then incr exhausted)
          done)
        engines)
    circuits;
  (* the campaign must actually exercise the ladder, not just survive it *)
  if seeds >= 10 && !degraded = 0 then
    faili "no run degraded: the ladder was never engaged";
  Printf.printf
    "reach chaos: %d runs, %d with degraded steps, %d exhausted, 0 escaped\n%!"
    !total !degraded !exhausted;
  !total

(* --- campaign 2: kill-and-resume --------------------------------------- *)

let with_ckpt f =
  let path = Filename.temp_file "chaos_ckpt" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let reached_bytes trans (r : Traversal.result) =
  Bdd.serialized_to_string (Bdd.export (Trans.man trans) r.Traversal.reached)

let kill_and_resume () =
  let circuit () = Generate.counter ~bits:7 in
  List.iter
    (fun
      ( ename,
        (run :
          ?resume:Resil.Checkpoint.reach_state -> Trans.t -> Traversal.result)
      )
    ->
      (* the uninterrupted, fault-free reference *)
      let trans = build circuit in
      let reference = reached_bytes trans (run trans) in
      with_ckpt @@ fun path ->
      (* "killed" run: checkpoints every 3 iterations, cut off by an
         iteration bound standing in for the kill signal *)
      let killed = build circuit in
      let _ =
        match ename with
        | "bfs" ->
            Bfs.run ~max_iter:40
              ~checkpoint:{ Resil.Checkpoint.path; every = 3 }
              killed
        | _ ->
            High_density.run ~max_iter:40
              ~checkpoint:{ Resil.Checkpoint.path; every = 3 }
              killed
      in
      let st = Resil.Checkpoint.load_reach path in
      if st.Resil.Checkpoint.iterations > 40 then
        faili "%s: checkpoint beyond the kill point" ename;
      (* resume must land on the reference, bit for bit *)
      let resumed = build circuit in
      let r = run ~resume:st resumed in
      if not r.Traversal.exact then
        faili "%s: resumed run did not reach the fixpoint" ename;
      if reached_bytes resumed r <> reference then
        faili "%s: resumed reached set differs from uninterrupted run" ename;
      (* a torn checkpoint (crash mid-write of a non-atomic writer) and a
         flipped bit must both be refused *)
      let data =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let write s =
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc
      in
      write (String.sub data 0 (String.length data / 2));
      (match Resil.Checkpoint.load_reach path with
      | exception Bdd.Corrupt _ -> ()
      | _ -> faili "%s: torn checkpoint accepted" ename);
      let flipped = Bytes.of_string data in
      Bytes.set flipped 10 (Char.chr (Char.code data.[10] lxor 0x10));
      write (Bytes.to_string flipped);
      match Resil.Checkpoint.load_reach path with
      | exception Bdd.Corrupt _ -> ()
      | _ -> faili "%s: bit-flipped checkpoint accepted" ename)
    [
      ("bfs", fun ?resume t -> Bfs.run ?resume t);
      ("hd", fun ?resume t -> High_density.run ?resume t);
    ];
  Printf.printf "kill-and-resume: both engines bit-for-bit, corruption refused\n%!"

(* --- campaign 3: runner under dispatch + kernel faults ------------------ *)

let runner_chaos () =
  let expected w =
    let man = Bdd.create ~nvars:w () in
    Bdd.size
      (List.fold_left (Bdd.bxor man) (Bdd.ff man)
         (List.init w (Bdd.ithvar man)))
  in
  let widths = List.init 30 (fun i -> 4 + (i mod 8)) in
  let quarantined = ref 0 and retried = ref 0 and jobs = ref 0 in
  for seed = 1 to 3 do
    Resil.Fault.arm
      (Some
         {
           Resil.Fault.disabled with
           seed;
           p_node_limit = 0.02;
           p_cache_wipe = 0.02;
           p_abort = 0.02;
           p_job_crash = 0.25;
         });
    Fun.protect ~finally:(fun () -> Resil.Fault.arm None) @@ fun () ->
    let results =
      Mt.Runner.map ~jobs:4
        ~retry:
          {
            Mt.Runner.max_attempts = 4;
            backoff = 0.001;
            backoff_max = 0.004;
            jitter = 0.25;
          }
        ~label:(Printf.sprintf "parity%d")
        (fun man w ->
          Bdd.size
            (List.fold_left (Bdd.bxor man) (Bdd.ff man)
               (List.init w (Bdd.ithvar man))))
        widths
    in
    List.iter2
      (fun w (r : _ Mt.Runner.result) ->
        incr jobs;
        if r.Mt.Runner.report.Mt.Runner.attempts > 1 then incr retried;
        match r.Mt.Runner.outcome with
        | Mt.Runner.Done n ->
            if n <> expected w then
              faili "runner seed %d width %d: wrong value %d" seed w n
        | Mt.Runner.Quarantined { last = Mt.Runner.Done _; _ }
        | Mt.Runner.Quarantined { last = Mt.Runner.Quarantined _; _ } ->
            faili "runner seed %d width %d: malformed quarantine" seed w
        | Mt.Runner.Quarantined _ -> incr quarantined
        | o ->
            faili "runner seed %d width %d: unexpected outcome %s" seed w
              (Format.asprintf "%a" Mt.Runner.pp_outcome o))
      widths results
  done;
  Printf.printf
    "runner chaos: %d jobs, %d retried, %d quarantined, rest correct\n%!"
    !jobs !retried !quarantined

let () =
  let seeds =
    match Sys.argv with
    | [| _ |] -> 25
    | [| _; n |] -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> n
        | _ ->
            prerr_endline "usage: chaos [SEEDS-PER-PAIR]";
            exit 1)
    | _ ->
        prerr_endline "usage: chaos [SEEDS-PER-PAIR]";
        exit 1
  in
  let runs = reach_chaos seeds in
  kill_and_resume ();
  runner_chaos ();
  Printf.printf "faults injected overall: %d\n%!" (Resil.Fault.injected ());
  if !failures > 0 then begin
    Printf.eprintf "chaos: %d failure(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf "chaos: all green (%d fault-injected reach runs)\n%!" runs
