(* Serialization: export/import round-trips (same manager, fresh manager,
   manager with a different variable order), the binary encoding, and
   clean failure on corrupt input. *)

let qtest ?(count = 200) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let nvars = 6

(* semantic equality of a BDD (in [man]) against the oracle, over every
   assignment of the [nvars]-variable space *)
let agrees man g o =
  let ok = ref true in
  for asg = 0 to (1 lsl nvars) - 1 do
    let bdd_val = Bdd.eval man g (fun v -> asg land (1 lsl v) <> 0) in
    if bdd_val <> Oracle.eval o asg then ok := false
  done;
  !ok

(* the acceptance property: 1000 random functions survive
   export -> import into a fresh manager *)
let prop_round_trip =
  qtest ~count:1000 "import (export f) == f (fresh manager)"
    (Tgen.arbitrary_expr ~nvars ~depth:6)
    (fun e ->
      let man, f, o = Tgen.setup ~nvars e in
      let man2 = Bdd.create () in
      let g = Bdd.import man2 (Bdd.export man f) in
      agrees man2 g o)

let prop_round_trip_same_manager =
  qtest "import (export f) is physically f in the same manager"
    (Tgen.arbitrary_expr ~nvars ~depth:6)
    (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      Bdd.equal f (Bdd.import man (Bdd.export man f)))

let prop_cross_order =
  qtest ~count:300 "import into a manager with a different variable order"
    QCheck.(
      pair (Tgen.arbitrary_expr ~nvars ~depth:6) (make (Tgen.permutation_gen nvars)))
    (fun (e, perm) ->
      let man, f, o = Tgen.setup ~nvars e in
      let man2 = Bdd.create ~nvars () in
      ignore (Bdd.reorder man2 ~order:perm ~roots:[]);
      let g = Bdd.import man2 (Bdd.export man f) in
      (* the rebuilt BDD is semantically f and canonical under the new
         order: re-exporting and re-importing it changes nothing *)
      agrees man2 g o
      && Bdd.equal g (Bdd.import man2 (Bdd.export man2 g)))

let prop_binary_round_trip =
  qtest "serialized_of_string (serialized_to_string s) == s"
    (Tgen.arbitrary_expr ~nvars ~depth:6)
    (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      let s = Bdd.export man f in
      Bdd.serialized_of_string (Bdd.serialized_to_string s) = s)

let test_export_list_sharing () =
  let man = Bdd.create ~nvars:8 () in
  let f = Bdd.conj man (List.init 6 (Bdd.ithvar man)) in
  let g = Bdd.bor man f (Bdd.nithvar man 7) in
  let s = Bdd.export_list man [ f; g; f ] in
  (* the shared DAG is serialized once, not per root *)
  Alcotest.(check int)
    "node count" (Bdd.shared_size [ f; g ])
    (Array.length s.Bdd.s_nodes);
  let man2 = Bdd.create () in
  match Bdd.import_list man2 s with
  | [ f'; g'; f'' ] ->
      Alcotest.(check bool) "sharing preserved" true (Bdd.equal f' f'');
      Alcotest.(check int)
        "shared size preserved"
        (Bdd.shared_size [ f; g ])
        (Bdd.shared_size [ f'; g' ])
  | _ -> Alcotest.fail "import_list arity"

let test_file_round_trip () =
  let man = Bdd.create ~nvars:8 () in
  let f =
    Bdd.bxor man
      (Bdd.conj man (List.init 4 (Bdd.ithvar man)))
      (Bdd.disj man (List.init 8 (Bdd.ithvar man)))
  in
  let path = Filename.temp_file "bddser" ".bdd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bdd.save path (Bdd.export man f);
      let g = Bdd.import man (Bdd.load path) in
      Alcotest.(check bool) "file round trip" true (Bdd.equal f g))

let check_corrupt name fn =
  match fn () with
  | exception Bdd.Corrupt _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Bdd.Corrupt, got %s" name
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Bdd.Corrupt, accepted the input" name

let test_corrupt_strings () =
  let man = Bdd.create ~nvars:4 () in
  let f = Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 3) in
  let good = Bdd.serialized_to_string (Bdd.export man f) in
  check_corrupt "empty" (fun () -> Bdd.serialized_of_string "");
  check_corrupt "bad magic" (fun () ->
      Bdd.serialized_of_string ("XXX1" ^ String.sub good 4 (String.length good - 4)));
  check_corrupt "truncated" (fun () ->
      Bdd.serialized_of_string (String.sub good 0 (String.length good - 1)));
  check_corrupt "trailing garbage" (fun () ->
      Bdd.serialized_of_string (good ^ "\x00"));
  check_corrupt "length bomb" (fun () ->
      (* announces 2^40 nodes in a few bytes: must be rejected before any
         allocation, not after *)
      Bdd.serialized_of_string
        ("BDD1" ^ "\x00" ^ "\x80\x80\x80\x80\x80\x80\x80\x80\x20"))

let test_corrupt_records () =
  let man = Bdd.create () in
  let s ?(nvars = 2) ?(order = None) ~nodes ~roots () =
    {
      Bdd.s_nvars = nvars;
      s_order = (match order with Some o -> o | None -> Array.init nvars Fun.id);
      s_nodes = nodes;
      s_roots = roots;
    }
  in
  check_corrupt "forward child reference" (fun () ->
      Bdd.import man (s ~nodes:[| (0, 3, 1); (1, 2, 0) |] ~roots:[| 3 |] ()));
  check_corrupt "negative child" (fun () ->
      Bdd.import man (s ~nodes:[| (0, -1, 1) |] ~roots:[| 2 |] ()));
  check_corrupt "variable out of range" (fun () ->
      Bdd.import man (s ~nodes:[| (7, 1, 0) |] ~roots:[| 2 |] ()));
  check_corrupt "root out of range" (fun () ->
      Bdd.import man (s ~nodes:[| (0, 1, 0) |] ~roots:[| 9 |] ()));
  check_corrupt "order length mismatch" (fun () ->
      Bdd.import man
        (s ~order:(Some [| 0 |]) ~nodes:[| (0, 1, 0) |] ~roots:[| 2 |] ()));
  check_corrupt "two roots through import" (fun () ->
      Bdd.import man (s ~nodes:[| (0, 1, 0) |] ~roots:[| 2; 2 |] ()));
  (* a non-canonical chain (child on the same level as its parent) must not
     crash: the ITE fallback rebuilds it as a proper ROBDD.  Here node 3 is
     ite(x0, x0, ff) which reduces to x0. *)
  let dubious = s ~nodes:[| (0, 1, 0); (0, 2, 0) |] ~roots:[| 3 |] () in
  match Bdd.import man dubious with
  | exception Bdd.Corrupt _ -> ()
  | g ->
      Alcotest.(check bool)
        "non-canonical input rebuilt canonically" true
        (Bdd.equal g (Bdd.ithvar man 0))

let tests =
  ( "serialize",
    [
      prop_round_trip;
      prop_round_trip_same_manager;
      prop_cross_order;
      prop_binary_round_trip;
      Alcotest.test_case "export_list sharing" `Quick test_export_list_sharing;
      Alcotest.test_case "save/load file" `Quick test_file_round_trip;
      Alcotest.test_case "corrupt strings" `Quick test_corrupt_strings;
      Alcotest.test_case "corrupt records" `Quick test_corrupt_records;
    ] )
