(* Kernel memory-subsystem tests: the packed open-addressing unique table
   and the lossy direct-mapped computed caches.

   Correctness is re-proven against the truth-table oracle with the
   smallest legal [cache_limit] (the 1024-slot floor), so direct-mapped
   collisions and overwrites actually happen during the properties, and
   the bookkeeping invariants are checked explicitly: caches stay within
   their bound under a long random workload, [Node_limit] fires at the
   exact count, and the [Bdd.stats] counters are monotone and agree
   across [--jobs] values. *)

let nvars = 6
let arb = Tgen.arbitrary_expr ~nvars ~depth:6

let qtest ?(count = 300) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

(* A manager whose computed caches are clamped to the 1024-slot floor:
   everything built through it runs under heavy overwrite pressure. *)
let tiny_man () =
  let man = Bdd.create ~nvars () in
  Bdd.set_cache_limit man 1;
  man

let setup_tiny e =
  let man = tiny_man () in
  let f = Tgen.build_bdd man e in
  let o = Tgen.build_oracle nvars e in
  (man, f, o)

let check_same man f o = Oracle.equal (Oracle.of_bdd man nvars f) o
let stat st key = Option.value ~default:0 (List.assoc_opt key st)

(* ------------------------------------------------------------------ *)
(* Oracle equivalence under lossy caches                               *)
(* ------------------------------------------------------------------ *)

let prop_connectives_tiny =
  qtest "connectives match oracle under 1k lossy caches" arb (fun e ->
      let man, f, o = setup_tiny e in
      check_same man f o)

let prop_not_tiny =
  qtest "double negation under 1k lossy caches" arb (fun e ->
      let man, f, o = setup_tiny e in
      Bdd.equal f (Bdd.bnot man (Bdd.bnot man f))
      && check_same man (Bdd.bnot man f) (Oracle.not_ o))

let prop_exists_tiny =
  qtest "exists matches oracle under 1k lossy caches"
    QCheck.(pair arb (make (Tgen.var_subset_gen nvars)))
    (fun (e, vs) ->
      let man, f, o = setup_tiny e in
      let r = Bdd.exists man ~vars:(Bdd.cube man vs) f in
      check_same man r (Oracle.exists o vs))

let prop_forall_tiny =
  qtest "forall matches oracle under 1k lossy caches"
    QCheck.(pair arb (make (Tgen.var_subset_gen nvars)))
    (fun (e, vs) ->
      let man, f, o = setup_tiny e in
      let r = Bdd.forall man ~vars:(Bdd.cube man vs) f in
      check_same man r (Oracle.forall o vs))

let prop_and_exists_tiny =
  qtest "and_exists = exists of conjunction under 1k lossy caches"
    QCheck.(triple arb arb (make (Tgen.var_subset_gen nvars)))
    (fun (e1, e2, vs) ->
      let man = tiny_man () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      let cube = Bdd.cube man vs in
      Bdd.equal
        (Bdd.and_exists man ~vars:cube f g)
        (Bdd.exists man ~vars:cube (Bdd.band man f g)))

let prop_constrain_tiny =
  qtest "f ∧ c = c ∧ constrain(f,c) under 1k lossy caches"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = tiny_man () in
      let f = Tgen.build_bdd man e1 and c = Tgen.build_bdd man e2 in
      QCheck.assume (not (Bdd.is_false c));
      Bdd.equal (Bdd.band man f c) (Bdd.band man c (Bdd.constrain man f c)))

let prop_restrict_tiny =
  qtest "restrict agrees on the care set under 1k lossy caches"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = tiny_man () in
      let f = Tgen.build_bdd man e1 and c = Tgen.build_bdd man e2 in
      QCheck.assume (not (Bdd.is_false c));
      let r = Bdd.restrict man f c in
      Bdd.equal (Bdd.band man r c) (Bdd.band man f c))

let prop_leq_tiny =
  qtest "leq matches oracle under 1k lossy caches"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = tiny_man () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      Bdd.leq man f g
      = Oracle.leq (Tgen.build_oracle nvars e1) (Tgen.build_oracle nvars e2))

let prop_weight_tiny =
  qtest "weight matches oracle density under 1k lossy caches" arb (fun e ->
      let man, f, o = setup_tiny e in
      let expect = float_of_int (Oracle.count o) /. float_of_int (1 lsl nvars) in
      Float.abs (Bdd.weight man f -. expect) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Cache bound under a long random workload                            *)
(* ------------------------------------------------------------------ *)

(* Regression for the old unbounded [not_cache] / duplicate-binding
   [cache_add]: hammer one tiny-cache manager with hundreds of random
   expressions (plus negations, quantifications and weights, so every
   computed cache sees traffic) and check the caches never exceed the
   configured ceiling. *)
let test_cache_bound () =
  let wide = 10 in
  let man = Bdd.create ~nvars:wide () in
  Bdd.set_cache_limit man 1024;
  let rand = Random.State.make [| 0x5eed |] in
  let gen = Tgen.expr_gen ~nvars:wide ~depth:7 in
  for i = 0 to 499 do
    let f = Tgen.build_bdd man (QCheck.Gen.generate1 ~rand gen) in
    let g = Bdd.bnot man f in
    let vars = Bdd.cube man [ i mod wide; (i * 3 + 1) mod wide ] in
    ignore (Bdd.exists man ~vars f);
    ignore (Bdd.and_exists man ~vars f g);
    ignore (Bdd.leq man f g);
    ignore (Bdd.weight man f)
  done;
  let st = Bdd.stats man in
  let entries = stat st "cache_entries"
  and capacity = stat st "cache_capacity" in
  Alcotest.(check bool) "entries <= capacity" true (entries <= capacity);
  (* 8 node caches + the weight cache, each clamped to <= 1024 slots *)
  Alcotest.(check bool)
    (Printf.sprintf "capacity %d within 9 * limit" capacity)
    true
    (capacity <= 9 * 1024);
  Alcotest.(check bool) "ite cache bounded" true (stat st "ite_cache" <= 1024);
  Alcotest.(check bool) "op cache bounded" true (stat st "op_cache" <= 1024);
  (* raising the limit afterwards must also re-clamp on the way down *)
  Bdd.set_cache_limit man 4096;
  Bdd.set_cache_limit man 1024;
  let st = Bdd.stats man in
  Alcotest.(check bool)
    "capacity re-clamped" true
    (stat st "cache_capacity" <= 9 * 1024)

(* ------------------------------------------------------------------ *)
(* Node_limit fires at the exact count                                 *)
(* ------------------------------------------------------------------ *)

let test_node_limit_exact () =
  let limit = 10 in
  let man = Bdd.create ~nvars:16 () in
  Bdd.set_node_limit man (Some limit);
  let build () =
    List.fold_left
      (fun acc v -> Bdd.bxor man acc (Bdd.ithvar man v))
      (Bdd.ff man)
      (List.init 16 Fun.id)
  in
  (match build () with
  | _ -> Alcotest.fail "Node_limit not raised"
  | exception Bdd.Node_limit -> ());
  Alcotest.(check int) "stopped at exactly the limit" limit
    (Bdd.unique_size man);
  (* removing the limit lets the same construction finish *)
  Bdd.set_node_limit man None;
  Alcotest.(check int) "parity16 after lifting the limit" 31
    (Bdd.size (build ()))

(* ------------------------------------------------------------------ *)
(* Stats counters are monotone                                         *)
(* ------------------------------------------------------------------ *)

let test_stats_monotone () =
  let man = Bdd.create ~nvars:8 () in
  let prev = ref (Bdd.stats man) in
  let keys = [ "nodes_made"; "peak_unique"; "cache_hits"; "cache_misses" ] in
  for i = 0 to 63 do
    let f =
      Bdd.conj man
        (List.init 4 (fun k -> Bdd.ithvar man ((i + (k * 3)) mod 8)))
    in
    ignore (Bdd.bnot man (Bdd.bor man f (Bdd.ithvar man (i mod 8))));
    ignore (Bdd.weight man f);
    let st = Bdd.stats man in
    List.iter
      (fun key ->
        if stat st key < stat !prev key then
          Alcotest.failf "%s decreased: %d -> %d" key (stat !prev key)
            (stat st key))
      keys;
    if stat st "peak_unique" < Bdd.unique_size man then
      Alcotest.fail "peak_unique below live unique_size";
    prev := st
  done;
  (* clearing caches must not disturb the lifetime hit/miss counters *)
  let before = Bdd.stats man in
  Bdd.clear_caches man;
  let after = Bdd.stats man in
  List.iter
    (fun key ->
      Alcotest.(check int)
        (key ^ " survives clear_caches")
        (stat before key) (stat after key))
    keys

(* ------------------------------------------------------------------ *)
(* Stats are identical across --jobs values                            *)
(* ------------------------------------------------------------------ *)

(* Each Mt.Runner job gets a fresh private manager, so the per-job
   counters must not depend on how many workers ran the batch. *)
let test_stats_across_jobs () =
  let mk_jobs () =
    List.map
      (fun width ->
        Mt.Runner.job ~label:(Printf.sprintf "parity%d" width) (fun man ->
            let parity =
              List.fold_left
                (fun acc v -> Bdd.bxor man acc (Bdd.ithvar man v))
                (Bdd.ff man)
                (List.init width Fun.id)
            in
            ignore (Bdd.exists man ~vars:(Bdd.cube man [ 0; 1 ]) parity);
            Bdd.size parity))
      [ 8; 10; 12; 14 ]
  in
  let strip (r : _ Mt.Runner.result) =
    let rep = r.Mt.Runner.report in
    ( rep.Mt.Runner.label,
      rep.Mt.Runner.peak_nodes,
      rep.Mt.Runner.nodes_made,
      rep.Mt.Runner.cache_hits,
      rep.Mt.Runner.cache_misses,
      Mt.Runner.value r )
  in
  let seq = List.map strip (Mt.Runner.run ~jobs:1 (mk_jobs ()))
  and par = List.map strip (Mt.Runner.run ~jobs:3 (mk_jobs ())) in
  List.iter2
    (fun (l1, pk1, nm1, h1, m1, v1) (l2, pk2, nm2, h2, m2, v2) ->
      Alcotest.(check string) "label" l1 l2;
      Alcotest.(check int) (l1 ^ " peak_nodes") pk1 pk2;
      Alcotest.(check int) (l1 ^ " nodes_made") nm1 nm2;
      Alcotest.(check int) (l1 ^ " cache_hits") h1 h2;
      Alcotest.(check int) (l1 ^ " cache_misses") m1 m2;
      Alcotest.(check (option int)) (l1 ^ " value") v1 v2)
    seq par

(* ------------------------------------------------------------------ *)
(* Table_full: the documented capacity ceiling                          *)
(* ------------------------------------------------------------------ *)

(* Build disjoint conjunctions until the ceiling fires.  The raise must
   happen before the probe loop could saturate a stripe, the ut_full
   counter must record it, and the manager must stay fully usable: the
   nodes built so far still evaluate, and clearing the ceiling lets the
   same construction complete. *)
let test_table_full ~shared () =
  let n = 16 in
  let man = Bdd.create ~nvars:n ~shared () in
  Bdd.set_table_capacity man (Some 64);
  Alcotest.(check (option int)) "capacity readback" (Some 64)
    (Bdd.table_capacity man);
  (* a dense pseudo-random function of 16 variables: ~2^16/16 distinct
     nodes, enough to push every stripe of the striped layout (which has
     a 64-slot-per-stripe floor) past its share *)
  let bit idx =
    let z = (idx + 0x9e3779b9) * 0x45d9f3b in
    let z = (z lxor (z lsr 16)) * 0x45d9f3b in
    (z lxor (z lsr 16)) land 1 = 1
  in
  let rec shannon v idx =
    if v = n then if bit idx then Bdd.tt man else Bdd.ff man
    else
      let hi = shannon (v + 1) (idx lor (1 lsl v))
      and lo = shannon (v + 1) idx in
      Bdd.ite man (Bdd.ithvar man v) hi lo
  in
  let build () = Bdd.size (shannon 0 0) in
  (match build () with
  | exception Bdd.Table_full -> ()
  | sz -> Alcotest.failf "expected Table_full under a 64-slot ceiling, built %d" sz);
  Alcotest.(check bool) "ut_full counted" true (Bdd.ut_full_hits man > 0);
  Alcotest.(check bool) "stats surface ut_full" true
    (stat (Bdd.stats man) "ut_full" > 0);
  (* the manager survived: existing values still behave.  Variable 15 is
     interned by the very first bottom-level ite, long before the raise;
     looking it up is a hit-path scan and band's terminal rule allocates
     nothing, so neither can raise again. *)
  let x15 = Bdd.ithvar man 15 in
  Alcotest.(check bool) "manager usable after Table_full" true
    (Bdd.equal x15 (Bdd.band man x15 x15));
  (* clearing the ceiling unblocks the identical construction *)
  Bdd.set_table_capacity man None;
  Alcotest.(check bool) "construction completes unbounded" true (build () > 1000)

let tests =
  ( "kernel",
    [
      Alcotest.test_case "cache bound under random workload" `Slow
        test_cache_bound;
      Alcotest.test_case "Table_full ceiling (private table)" `Quick
        (test_table_full ~shared:false);
      Alcotest.test_case "Table_full ceiling (striped table)" `Quick
        (test_table_full ~shared:true);
      Alcotest.test_case "Node_limit at exact count" `Quick
        test_node_limit_exact;
      Alcotest.test_case "stats counters monotone" `Quick test_stats_monotone;
      Alcotest.test_case "stats identical across jobs" `Quick
        test_stats_across_jobs;
      prop_connectives_tiny;
      prop_not_tiny;
      prop_exists_tiny;
      prop_forall_tiny;
      prop_and_exists_tiny;
      prop_constrain_tiny;
      prop_restrict_tiny;
      prop_leq_tiny;
      prop_weight_tiny;
    ] )
